/// \file bench_ivm.cc
/// \brief Experiment E18: incremental view maintenance vs. full recompute.
///
/// A mixed read/write loop over a ~1M-tuple transitive-closure memo:
/// 9600 disjoint 14-edge chains (134,400 edge tuples, 1,008,000 path
/// tuples). Each iteration appends a batch of edges (one per chain, batch
/// sizes 1 / 64 / 4096), reads through the memo — which forces the
/// refresh being measured — then erases the same edges and reads again,
/// restoring the base state. The refresh dominates, so the loop
/// measures exactly what ISSUE 9 claims: DRed patching a small delta
/// into a large memo (ivm auto) vs. rerunning the fixpoint from scratch
/// (ivm off).
///
/// The acceptance criterion is the per-batch-size ratio of
/// BM_RefreshFull to BM_RefreshAuto wall time: >= 10x at every batch
/// size up to 4096. BM_VerifyIdentical is registered last and aborts
/// the binary if the two engines' closures ever diverge (checked after
/// the insert half and after the erase half at every batch size).
///
/// Output lands in BENCH_ivm.json via tools/run_bench.sh bench_ivm.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/api/engine.h"

namespace gluenail {
namespace {

constexpr int kChains = 9600;
constexpr int kChainEdges = 14;  // nodes 0..14 per chain; slot 15 appended
constexpr int kStride = 32;      // node id = chain * kStride + slot

int Node(int chain, int slot) { return chain * kStride + slot; }

/// The batch appended (and later retracted) by one iteration: one tail
/// edge per chain for the first \p batch chains.
MutationBatch TailBatch(int batch, bool insert) {
  MutationBatch b;
  for (int c = 0; c < batch; ++c) {
    std::string fact = StrCat("edge(", Node(c, kChainEdges), ",",
                              Node(c, kChainEdges + 1), ")");
    if (insert) {
      b.Insert(fact);
    } else {
      b.Erase(fact);
    }
  }
  return b;
}

/// One engine per ivm mode over the shared chain workload, built lazily
/// and kept for the whole binary (function-local statics are
/// constructed thread-safely).
class IvmHarness {
 public:
  static IvmHarness& Get(IvmMode mode) {
    static IvmHarness auto_h(IvmMode::kAuto);
    static IvmHarness off_h(IvmMode::kOff);
    return mode == IvmMode::kOff ? off_h : auto_h;
  }

  Engine& engine() { return *engine_; }

  /// Read through the memo from one chain head; forces the refresh.
  size_t Probe() {
    Engine::QueryResult r =
        bench::Require(engine_->Query(StrCat("path(", Node(0, 0), ", Y)")));
    return r.rows.size();
  }

 private:
  explicit IvmHarness(IvmMode mode) {
    EngineOptions opts;
    opts.ivm_mode = mode;
    engine_ = std::make_unique<Engine>(opts);
    bench::Require(engine_->LoadProgram(bench::TcModule("")));
    MutationBatch edges;
    for (int c = 0; c < kChains; ++c) {
      for (int i = 0; i < kChainEdges; ++i) {
        edges.Insert(
            StrCat("edge(", Node(c, i), ",", Node(c, i + 1), ")"));
      }
    }
    bench::Require(engine_->ApplyBatch(edges).status());
    Probe();  // materialize the base memo outside any timing loop
  }

  std::unique_ptr<Engine> engine_;
};

void RefreshLoop(benchmark::State& state, IvmMode mode) {
  IvmHarness& harness = IvmHarness::Get(mode);
  const int batch = static_cast<int>(state.range(0));
  const MutationBatch grow = TailBatch(batch, /*insert=*/true);
  const MutationBatch shrink = TailBatch(batch, /*insert=*/false);
  for (auto _ : state) {
    bench::Require(harness.engine().ApplyBatch(grow).status());
    benchmark::DoNotOptimize(harness.Probe());
    bench::Require(harness.engine().ApplyBatch(shrink).status());
    benchmark::DoNotOptimize(harness.Probe());
  }
  NailEngine* nail = harness.engine().nail_engine();
  state.SetItemsProcessed(state.iterations() * 2);  // refreshes
  state.counters["delta_refreshes"] =
      static_cast<double>(nail->delta_refresh_count());
  state.counters["full_refreshes"] =
      static_cast<double>(nail->full_refresh_count());
}

void BM_RefreshAuto(benchmark::State& state) {
  RefreshLoop(state, IvmMode::kAuto);
}
BENCHMARK(BM_RefreshAuto)->Arg(1)->Arg(64)->Arg(4096)->UseRealTime();

void BM_RefreshFull(benchmark::State& state) {
  RefreshLoop(state, IvmMode::kOff);
}
BENCHMARK(BM_RefreshFull)
    ->Arg(1)
    ->Arg(64)
    ->Arg(4096)
    ->Iterations(2)
    ->UseRealTime();

/// Aborts the binary if the incrementally maintained closure ever
/// differs from the recomputed one. Row-count equality over the whole
/// memo plus rendered-row equality on every chain the batch touched
/// (TermIds are pool-local, so cross-engine comparison goes through
/// text), checked after both halves of the mixed loop.
void CheckIdentical(int batch) {
  Engine& a = IvmHarness::Get(IvmMode::kAuto).engine();
  Engine& b = IvmHarness::Get(IvmMode::kOff).engine();
  size_t na = bench::Require(a.Query("path(X, Y)")).rows.size();
  size_t nb = bench::Require(b.Query("path(X, Y)")).rows.size();
  if (na != nb) {
    fprintf(stderr, "bench_ivm: closure size diverged at batch %d: %zu vs %zu\n",
            batch, na, nb);
    std::abort();
  }
  for (int c = 0; c < batch; ++c) {
    std::string goal = StrCat("path(", Node(c, 0), ", Y)");
    auto render = [&goal](Engine& e) {
      std::string out;
      for (const Tuple& row : bench::Require(e.Query(goal)).rows) {
        for (TermId id : row) {
          out += e.terms().ToString(id);
          out += ',';
        }
        out += ';';
      }
      return out;
    };
    if (render(a) != render(b)) {
      fprintf(stderr, "bench_ivm: %s diverged at batch %d\n", goal.c_str(),
              batch);
      std::abort();
    }
  }
}

void BM_VerifyIdentical(benchmark::State& state) {
  for (auto _ : state) {
    for (int batch : {1, 64, 4096}) {
      for (Engine* e : {&IvmHarness::Get(IvmMode::kAuto).engine(),
                        &IvmHarness::Get(IvmMode::kOff).engine()}) {
        bench::Require(e->ApplyBatch(TailBatch(batch, true)).status());
      }
      CheckIdentical(batch);
      for (Engine* e : {&IvmHarness::Get(IvmMode::kAuto).engine(),
                        &IvmHarness::Get(IvmMode::kOff).engine()}) {
        bench::Require(e->ApplyBatch(TailBatch(batch, false)).status());
      }
      CheckIdentical(batch);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VerifyIdentical)->Iterations(1);

}  // namespace
}  // namespace gluenail

BENCHMARK_MAIN();
