/// \file bench_vector.cc
/// \brief Experiment E16: batch-at-a-time vs. tuple-at-a-time execution.
///
/// The join/scan hot path A/B from the vectorized-execution work
/// (src/exec/vector/): identical engines and plans, batch_mode forced
/// kOff (classic tuple-at-a-time streaming) vs. kAlways (lane buffers +
/// selection vectors, one emit per 4096-lane batch). Sized at 10k / 100k
/// / 1M rows; the acceptance bar is >= 2x throughput on the 1M-row
/// join/scan shape (BM_JoinScan), and every shape requires both modes to
/// produce the same answer.
///
/// Heads are kept small on purpose: inserting a large result relation
/// costs the same in either mode and would dilute the pipeline A/B into
/// a storage benchmark. BM_KeyedProbeJoin is the deliberately
/// memory-bound counterpoint — index probe chains over a 1M-row arena
/// miss cache in both modes, so batching only trims the dispatch slice.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace gluenail {
namespace {

ExecOptions::BatchMode Mode(int64_t arg) {
  return arg != 0 ? ExecOptions::BatchMode::kAlways
                  : ExecOptions::BatchMode::kOff;
}

const char* ModeName(int64_t arg) { return arg != 0 ? "batch" : "tuple"; }

/// Values cycle over [0, kVals) so filter selectivities are exact.
constexpr int kVals = 1000;

void RequireRows(Engine* engine, const std::string& goal, size_t expect) {
  auto out = bench::Require(engine->Query(goal));
  if (out.rows.size() != expect) {
    fprintf(stderr, "bench result mismatch for %s: got %zu want %zu\n",
            goal.c_str(), out.rows.size(), expect);
    std::abort();
  }
}

/// Scan leg: full scan of big through a chain of four filters, the last
/// two selective (4 of every 1000 rows survive). The pipelineable run the
/// batch runner fuses into one lane-at-a-time segment.
void BM_ScanFilterChain(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(1));
  EngineOptions opts;
  opts.exec.batch_mode = Mode(state.range(0));
  Engine engine(opts);
  for (int i = 0; i < rows; ++i) {
    bench::Require(engine.AddFact(StrCat("big(", i, ",", i % kVals, ").")));
  }
  const std::string stmt =
      "out(X) := big(X, Y) & Y >= 0 & Y < 1000 & Y > 990 & Y < 995.";
  for (auto _ : state) {
    bench::Require(engine.ExecuteStatement(stmt));
  }
  RequireRows(&engine, "out(X)", static_cast<size_t>(rows / kVals) * 4);
  state.SetItemsProcessed(state.iterations() * rows);
  state.SetLabel(StrCat(ModeName(state.range(0)), "/rows=", rows));
}
BENCHMARK(BM_ScanFilterChain)
    ->ArgsProduct({{0, 1}, {10'000, 100'000, 1'000'000}})
    ->Unit(benchmark::kMillisecond);

/// The headline join/scan shape: scan big, filter down to the last 2999
/// rows, then join the survivors against a 1000-row dimension keyed on
/// its first column. The syntactic cost model pins the written order so
/// both modes run the identical scan-driven plan (plan choice is E13's
/// experiment, not this one).
void BM_JoinScan(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(1));
  EngineOptions opts;
  opts.exec.batch_mode = Mode(state.range(0));
  opts.planner.cost_model = PlannerOptions::CostModel::kSyntactic;
  Engine engine(opts);
  for (int i = 0; i < rows; ++i) {
    bench::Require(engine.AddFact(StrCat("big(", i, ",", i % kVals, ").")));
  }
  for (int k = 0; k < kVals; ++k) {
    bench::Require(engine.AddFact(StrCat("dim(", k, ",", k % 10, ").")));
  }
  const std::string stmt = StrCat(
      "out(P) := big(K, V) & V >= 0 & K > ", rows - 3000, " & dim(V, P).");
  for (auto _ : state) {
    bench::Require(engine.ExecuteStatement(stmt));
  }
  // Survivors cover every V in [0, kVals), so out(P) is the 10 distinct
  // dim payloads.
  RequireRows(&engine, "out(P)", 10);
  state.SetItemsProcessed(state.iterations() * rows);
  state.SetLabel(StrCat(ModeName(state.range(0)), "/rows=", rows));
}
BENCHMARK(BM_JoinScan)
    ->ArgsProduct({{0, 1}, {10'000, 100'000, 1'000'000}})
    ->Unit(benchmark::kMillisecond);

/// Probe-heavy join: 1000 driver rows each probing a chain of rows/1000
/// matches keyed into big, filtered selectively afterwards. Walking the
/// probe chains misses cache in both modes — the memory-bound bound on
/// what batching can buy.
void BM_KeyedProbeJoin(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(1));
  EngineOptions opts;
  opts.exec.batch_mode = Mode(state.range(0));
  Engine engine(opts);
  for (int i = 0; i < rows; ++i) {
    bench::Require(engine.AddFact(StrCat("big(", i, ",", i % kVals, ").")));
  }
  for (int k = 0; k < kVals; ++k) {
    bench::Require(engine.AddFact(StrCat("dim(", k, ",", k % 10, ").")));
  }
  const std::string stmt = StrCat(
      "out(P) := dim(V, P) & big(K, V) & K > ", rows - 3000, ".");
  for (auto _ : state) {
    bench::Require(engine.ExecuteStatement(stmt));
  }
  RequireRows(&engine, "out(P)", 10);
  state.SetItemsProcessed(state.iterations() * rows);
  state.SetLabel(StrCat(ModeName(state.range(0)), "/rows=", rows));
}
BENCHMARK(BM_KeyedProbeJoin)
    ->ArgsProduct({{0, 1}, {10'000, 100'000, 1'000'000}})
    ->Unit(benchmark::kMillisecond);

/// Negation over the scan path: for every driver row, prove absence in a
/// half-sized relation. Exercises the batched existence check with
/// per-lane early exit.
void BM_NegationScan(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(1));
  EngineOptions opts;
  opts.exec.batch_mode = Mode(state.range(0));
  Engine engine(opts);
  for (int i = 0; i < rows; ++i) {
    bench::Require(engine.AddFact(StrCat("n(", i, ").")));
    if (i % 2 == 0) bench::Require(engine.AddFact(StrCat("odd(", i, ").")));
  }
  const std::string stmt = "out(X) := n(X) & !odd(X).";
  for (auto _ : state) {
    bench::Require(engine.ExecuteStatement(stmt));
  }
  RequireRows(&engine, "out(X)", static_cast<size_t>(rows / 2));
  state.SetItemsProcessed(state.iterations() * rows);
  state.SetLabel(StrCat(ModeName(state.range(0)), "/rows=", rows));
}
BENCHMARK(BM_NegationScan)
    ->ArgsProduct({{0, 1}, {10'000, 100'000}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace gluenail

BENCHMARK_MAIN();
