/// Tests for the paper-§10 adaptive index policy: "an index could be
/// created for a relation after the cumulative cost of selection by
/// scanning the relation reaches the cost of creating the index."

#include <gtest/gtest.h>

#include "src/storage/adaptive.h"
#include "src/storage/relation.h"
#include "src/term/term_pool.h"

namespace gluenail {
namespace {

class AdaptiveIndexTest : public ::testing::Test {
 protected:
  Tuple T(std::initializer_list<int64_t> xs) {
    Tuple t;
    for (int64_t x : xs) t.push_back(pool_.MakeInt(x));
    return t;
  }

  void Fill(Relation* r, int n) {
    for (int i = 0; i < n; ++i) r->Insert(T({i % 16, i}));
  }

  TermPool pool_;
};

TEST_F(AdaptiveIndexTest, AccessStatsAccumulate) {
  AccessStats stats;
  stats.RecordScan(0b01, 100);
  stats.RecordScan(0b01, 150);
  stats.RecordScan(0b10, 10);
  EXPECT_EQ(stats.cumulative_scanned(0b01), 250u);
  EXPECT_EQ(stats.cumulative_scanned(0b10), 10u);
  EXPECT_EQ(stats.cumulative_scanned(0b11), 0u);
}

TEST_F(AdaptiveIndexTest, ShouldBuildAtThreshold) {
  AccessStats stats;
  AdaptiveConfig cfg;  // build cost = 1.0 * relation size
  stats.RecordScan(0b01, 999);
  EXPECT_FALSE(stats.ShouldBuild(0b01, 1000, cfg));
  stats.RecordScan(0b01, 1);
  EXPECT_TRUE(stats.ShouldBuild(0b01, 1000, cfg));
}

TEST_F(AdaptiveIndexTest, BuildCostFactorScalesThreshold) {
  AccessStats stats;
  AdaptiveConfig cfg;
  cfg.build_cost_factor = 3.0;
  stats.RecordScan(0b01, 2000);
  EXPECT_FALSE(stats.ShouldBuild(0b01, 1000, cfg));
  stats.RecordScan(0b01, 1000);
  EXPECT_TRUE(stats.ShouldBuild(0b01, 1000, cfg));
}

TEST_F(AdaptiveIndexTest, AdaptivePolicyConvertsScansToIndex) {
  Relation r("edge", 2);
  r.set_index_policy(IndexPolicy::kAdaptive);
  Fill(&r, 1000);
  std::vector<uint32_t> rows;
  // First selection: no stats yet -> scans.
  r.Select(0b01, T({3}), &rows);
  EXPECT_EQ(r.FindIndex(0b01), nullptr);
  // Second selection: cumulative scanned (1000) >= size (1000) -> builds.
  rows.clear();
  r.Select(0b01, T({3}), &rows);
  EXPECT_NE(r.FindIndex(0b01), nullptr);
  EXPECT_EQ(r.counters().indexes_built, 1u);
  // Results identical either way.
  EXPECT_EQ(rows.size(), 1000u / 16 + (3 < 1000 % 16 ? 1 : 0));
}

TEST_F(AdaptiveIndexTest, NeverIndexNeverBuilds) {
  Relation r("edge", 2);
  r.set_index_policy(IndexPolicy::kNeverIndex);
  Fill(&r, 100);
  std::vector<uint32_t> rows;
  for (int q = 0; q < 50; ++q) {
    rows.clear();
    r.Select(0b01, T({1}), &rows);
  }
  EXPECT_EQ(r.FindIndex(0b01), nullptr);
  EXPECT_EQ(r.counters().indexes_built, 0u);
}

TEST_F(AdaptiveIndexTest, AlwaysIndexBuildsOnFirstUse) {
  Relation r("edge", 2);
  r.set_index_policy(IndexPolicy::kAlwaysIndex);
  Fill(&r, 100);
  std::vector<uint32_t> rows;
  r.Select(0b01, T({1}), &rows);
  EXPECT_NE(r.FindIndex(0b01), nullptr);
  EXPECT_EQ(r.counters().indexes_built, 1u);
  EXPECT_EQ(r.counters().index_lookups, 1u);
}

TEST_F(AdaptiveIndexTest, DifferentColumnSetsTrackedIndependently) {
  Relation r("edge", 2);
  r.set_index_policy(IndexPolicy::kAdaptive);
  Fill(&r, 100);
  std::vector<uint32_t> rows;
  // Drive column 0 over the threshold; column 1 untouched.
  rows.clear();
  r.Select(0b01, T({1}), &rows);
  rows.clear();
  r.Select(0b01, T({1}), &rows);
  EXPECT_NE(r.FindIndex(0b01), nullptr);
  EXPECT_EQ(r.FindIndex(0b10), nullptr);
}

TEST_F(AdaptiveIndexTest, AdaptiveAndScanAgreeOnResults) {
  Relation scan("edge", 2), adaptive("edge", 2);
  scan.set_index_policy(IndexPolicy::kNeverIndex);
  adaptive.set_index_policy(IndexPolicy::kAdaptive);
  Fill(&scan, 500);
  Fill(&adaptive, 500);
  for (int q = 0; q < 10; ++q) {
    std::vector<uint32_t> a, b;
    scan.Select(0b01, T({q % 16}), &a);
    adaptive.Select(0b01, T({q % 16}), &b);
    ASSERT_EQ(a.size(), b.size()) << "query " << q;
    // Same multiset of tuples.
    std::vector<Tuple> ta, tb;
    for (uint32_t x : a) {
      RowView row = scan.row(x);
      ta.emplace_back(row.begin(), row.end());
    }
    for (uint32_t x : b) {
      RowView row = adaptive.row(x);
      tb.emplace_back(row.begin(), row.end());
    }
    std::sort(ta.begin(), ta.end());
    std::sort(tb.begin(), tb.end());
    EXPECT_EQ(ta, tb);
  }
}

}  // namespace
}  // namespace gluenail
