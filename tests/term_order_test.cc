/// Property tests for the total term order (TermPool::Compare): it must
/// be a strict total order consistent with equality — the aggregate
/// operators, canonical output, and `arbitrary`'s determinism all lean on
/// it.

#include <gtest/gtest.h>

#include <random>

#include "src/term/term_pool.h"

namespace gluenail {
namespace {

class TermOrderTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  TermId RandomTerm(std::mt19937* rng, int depth) {
    std::uniform_int_distribution<int> kind(0, depth > 2 ? 2 : 4);
    std::uniform_int_distribution<int> small(0, 6);
    switch (kind(*rng)) {
      case 0:
        return pool_.MakeInt(small(*rng) - 3);
      case 1:
        return pool_.MakeFloat((small(*rng) - 3) * 0.5);
      case 2:
        return pool_.MakeSymbol(std::string("s") +
                                static_cast<char>('a' + small(*rng)));
      case 3: {
        std::vector<TermId> args{RandomTerm(rng, depth + 1)};
        return pool_.MakeCompound(std::string(1, 'f' + (small(*rng) % 3)),
                                  args);
      }
      default: {
        std::vector<TermId> args{RandomTerm(rng, depth + 1),
                                 RandomTerm(rng, depth + 1)};
        // HiLog: sometimes a compound functor.
        if (small(*rng) == 0) {
          std::vector<TermId> inner{pool_.MakeInt(1)};
          TermId f = pool_.MakeCompound("h", inner);
          return pool_.MakeCompound(f, args);
        }
        return pool_.MakeCompound("g", args);
      }
    }
  }

  TermPool pool_;
};

TEST_P(TermOrderTest, StrictTotalOrderProperties) {
  std::mt19937 rng(GetParam());
  std::vector<TermId> terms;
  for (int i = 0; i < 60; ++i) terms.push_back(RandomTerm(&rng, 0));

  for (TermId a : terms) {
    // Reflexive equality.
    EXPECT_EQ(pool_.Compare(a, a), 0);
    for (TermId b : terms) {
      int ab = pool_.Compare(a, b);
      int ba = pool_.Compare(b, a);
      // Antisymmetry.
      EXPECT_EQ(ab, -ba) << pool_.ToString(a) << " vs " << pool_.ToString(b);
      // Consistency with hash-consed identity, except int/float numeric
      // ties which are ordered by kind.
      if (ab == 0) {
        bool numeric_tie = pool_.IsNumber(a) && pool_.IsNumber(b) &&
                           pool_.NumericValue(a) == pool_.NumericValue(b);
        EXPECT_TRUE(a == b || numeric_tie);
      }
    }
  }
  // Transitivity over sampled triples.
  std::uniform_int_distribution<size_t> pick(0, terms.size() - 1);
  for (int i = 0; i < 500; ++i) {
    TermId a = terms[pick(rng)], b = terms[pick(rng)], c = terms[pick(rng)];
    if (pool_.Compare(a, b) <= 0 && pool_.Compare(b, c) <= 0) {
      EXPECT_LE(pool_.Compare(a, c), 0)
          << pool_.ToString(a) << " <= " << pool_.ToString(b)
          << " <= " << pool_.ToString(c);
    }
  }
}

TEST_P(TermOrderTest, SortingIsStableAcrossShuffles) {
  std::mt19937 rng(GetParam() + 1000);
  std::vector<TermId> terms;
  for (int i = 0; i < 50; ++i) terms.push_back(RandomTerm(&rng, 0));
  auto sorted1 = terms;
  std::sort(sorted1.begin(), sorted1.end(), [&](TermId a, TermId b) {
    return pool_.Compare(a, b) < 0;
  });
  std::shuffle(terms.begin(), terms.end(), rng);
  auto sorted2 = terms;
  std::sort(sorted2.begin(), sorted2.end(), [&](TermId a, TermId b) {
    return pool_.Compare(a, b) < 0;
  });
  // Same multiset, same order ⇒ identical rendering.
  std::string r1, r2;
  for (TermId t : sorted1) r1 += pool_.ToString(t) + ";";
  for (TermId t : sorted2) r2 += pool_.ToString(t) + ";";
  EXPECT_EQ(r1, r2);
}

TEST_P(TermOrderTest, HashConsingIsCanonical) {
  // Building the same random term twice (independently) yields the same
  // id; printing and re-reading preserves identity.
  std::mt19937 rng1(GetParam() + 7);
  std::mt19937 rng2(GetParam() + 7);
  for (int i = 0; i < 40; ++i) {
    TermId a = RandomTerm(&rng1, 0);
    TermId b = RandomTerm(&rng2, 0);
    EXPECT_EQ(a, b);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TermOrderTest,
                         ::testing::Values(1u, 7u, 42u, 1991u));

}  // namespace
}  // namespace gluenail
