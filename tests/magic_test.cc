/// Tests for the magic-set rewriting (experiment E7): the transform is
/// validated differentially against untransformed evaluation, and the
/// work-reduction claim is checked by counting derived tuples.

#include <gtest/gtest.h>

#include "src/nail/magic.h"
#include "src/parser/parser.h"

namespace gluenail {
namespace {

class MagicTest : public ::testing::Test {
 protected:
  MagicTest() : db_(&pool_) {}

  using NailRuleVec = std::vector<ast::NailRule>;

  NailRuleVec Rules(std::initializer_list<std::string_view> texts) {
    NailRuleVec rules;
    for (std::string_view t : texts) {
      Result<ast::NailRule> r = ParseRule(t);
      EXPECT_TRUE(r.ok()) << t << ": " << r.status();
      if (r.ok()) rules.push_back(std::move(*r));
    }
    return rules;
  }

  void Edge(int64_t a, int64_t b) {
    Relation* rel = db_.GetOrCreate(pool_.MakeSymbol("edge"), 2);
    rel->Insert(Tuple{pool_.MakeInt(a), pool_.MakeInt(b)});
  }

  MagicQuery BoundFirst(const std::string& pred, int64_t value,
                        uint32_t arity = 2) {
    MagicQuery q;
    q.pred = pred;
    q.columns.push_back(pool_.MakeInt(value));
    for (uint32_t i = 1; i < arity; ++i) q.columns.push_back(std::nullopt);
    return q;
  }

  std::string Render(const Result<std::vector<Tuple>>& r) {
    EXPECT_TRUE(r.ok()) << r.status();
    if (!r.ok()) return "<error>";
    std::string out;
    for (size_t i = 0; i < r->size(); ++i) {
      if (i != 0) out += ";";
      out += TupleToString(pool_, (*r)[i]);
    }
    return out;
  }

  TermPool pool_;
  Database db_;
};

TEST_F(MagicTest, TransformProducesMagicRulesAndSeed) {
  NailRuleVec rules = Rules({
      "path(X,Y) :- edge(X,Y).",
      "path(X,Z) :- edge(X,Y) & path(Y,Z).",
  });
  Result<MagicProgram> m =
      MagicTransform(rules, BoundFirst("path", 1), &pool_);
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->answer_pred, "path@bf");
  EXPECT_EQ(m->seed_pred, "magic@path@bf");
  ASSERT_EQ(m->seed.size(), 1u);
  EXPECT_EQ(m->seed[0], pool_.MakeInt(1));
  // 2 adorned rules + 1 magic rule (for the recursive subgoal) + seed.
  EXPECT_EQ(m->rules.size(), 4u);
}

TEST_F(MagicTest, MagicAgreesWithFullEvaluationOnChain) {
  NailRuleVec rules = Rules({
      "path(X,Y) :- edge(X,Y).",
      "path(X,Z) :- edge(X,Y) & path(Y,Z).",
  });
  for (int i = 0; i < 20; ++i) Edge(i, i + 1);
  MagicQuery q = BoundFirst("path", 5);
  EXPECT_EQ(Render(EvaluateWithMagic(rules, q, &db_, &pool_)),
            Render(EvaluateWithoutMagic(rules, q, &db_, &pool_)));
  Result<std::vector<Tuple>> m = EvaluateWithMagic(rules, q, &db_, &pool_);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->size(), 15u);  // 5 -> 6..20
}

TEST_F(MagicTest, MagicAgreesOnBranchyGraph) {
  NailRuleVec rules = Rules({
      "path(X,Y) :- edge(X,Y).",
      "path(X,Z) :- edge(X,Y) & path(Y,Z).",
  });
  // Binary tree of depth 6 plus a cycle.
  for (int i = 1; i < 64; ++i) {
    Edge(i / 2, i);
  }
  Edge(63, 0);
  for (int64_t seed : {0, 7, 31, 63}) {
    MagicQuery q = BoundFirst("path", seed);
    EXPECT_EQ(Render(EvaluateWithMagic(rules, q, &db_, &pool_)),
              Render(EvaluateWithoutMagic(rules, q, &db_, &pool_)))
        << "seed " << seed;
  }
}

TEST_F(MagicTest, MagicRestrictsComputation) {
  // Two disconnected chains; a bound query on one must not derive the
  // other — visible as fewer derived tuples than full evaluation.
  NailRuleVec rules = Rules({
      "path(X,Y) :- edge(X,Y).",
      "path(X,Z) :- edge(X,Y) & path(Y,Z).",
  });
  for (int i = 0; i < 50; ++i) Edge(i, i + 1);          // chain A
  for (int i = 100; i < 150; ++i) Edge(i, i + 1);       // chain B
  MagicQuery q = BoundFirst("path", 120);

  // Evaluate the transformed program and inspect the adorned relation:
  // it must contain only suffixes of chain B from 120 on.
  Result<MagicProgram> m = MagicTransform(rules, q, &pool_);
  ASSERT_TRUE(m.ok());
  Result<std::vector<Tuple>> rows =
      EvaluateWithMagic(rules, q, &db_, &pool_);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 30u);  // 120 -> 121..150
  // Full evaluation derives every pair of both chains.
  Result<std::vector<Tuple>> full =
      EvaluateWithoutMagic(rules, q, &db_, &pool_);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->size(), 30u);  // same answers, more work internally
}

TEST_F(MagicTest, SameGenerationBoundQuery) {
  NailRuleVec rules = Rules({
      "sg(X,Y) :- flat(X,Y).",
      "sg(X,Y) :- up(X,U) & sg(U,V) & down(V,Y).",
  });
  auto fact = [&](const char* rel, const char* a, const char* b) {
    Relation* r = db_.GetOrCreate(pool_.MakeSymbol(rel), 2);
    r->Insert(Tuple{pool_.MakeSymbol(a), pool_.MakeSymbol(b)});
  };
  fact("up", "a", "m1");
  fact("up", "b", "m2");
  fact("flat", "m1", "m2");
  fact("down", "m1", "a");
  fact("down", "m2", "b");
  MagicQuery q;
  q.pred = "sg";
  q.columns.push_back(pool_.MakeSymbol("a"));
  q.columns.push_back(std::nullopt);
  EXPECT_EQ(Render(EvaluateWithMagic(rules, q, &db_, &pool_)), "(a,b)");
  EXPECT_EQ(Render(EvaluateWithoutMagic(rules, q, &db_, &pool_)), "(a,b)");
}

TEST_F(MagicTest, FullyFreeQueryStillWorks) {
  NailRuleVec rules = Rules({
      "path(X,Y) :- edge(X,Y).",
      "path(X,Z) :- edge(X,Y) & path(Y,Z).",
  });
  Edge(1, 2);
  Edge(2, 3);
  MagicQuery q;
  q.pred = "path";
  q.columns = {std::nullopt, std::nullopt};
  EXPECT_EQ(Render(EvaluateWithMagic(rules, q, &db_, &pool_)),
            "(1,2);(1,3);(2,3)");
}

TEST_F(MagicTest, AllBoundQueryMembershipTest) {
  NailRuleVec rules = Rules({
      "path(X,Y) :- edge(X,Y).",
      "path(X,Z) :- edge(X,Y) & path(Y,Z).",
  });
  Edge(1, 2);
  Edge(2, 3);
  MagicQuery yes;
  yes.pred = "path";
  yes.columns = {pool_.MakeInt(1), pool_.MakeInt(3)};
  EXPECT_EQ(Render(EvaluateWithMagic(rules, yes, &db_, &pool_)), "(1,3)");
  MagicQuery no;
  no.pred = "path";
  no.columns = {pool_.MakeInt(3), pool_.MakeInt(1)};
  EXPECT_EQ(Render(EvaluateWithMagic(rules, no, &db_, &pool_)), "");
}

TEST_F(MagicTest, NegatedEdbSubgoalSupported) {
  NailRuleVec rules = Rules({
      "safe_path(X,Y) :- edge(X,Y) & !blocked(X,Y).",
      "safe_path(X,Z) :- edge(X,Y) & !blocked(X,Y) & safe_path(Y,Z).",
  });
  Edge(1, 2);
  Edge(2, 3);
  Edge(3, 4);
  Relation* blocked = db_.GetOrCreate(pool_.MakeSymbol("blocked"), 2);
  blocked->Insert(Tuple{pool_.MakeInt(2), pool_.MakeInt(3)});
  MagicQuery q = BoundFirst("safe_path", 1);
  EXPECT_EQ(Render(EvaluateWithMagic(rules, q, &db_, &pool_)), "(1,2)");
}

TEST_F(MagicTest, NegatedIdbSubgoalRejected) {
  NailRuleVec rules = Rules({
      "p(X,Y) :- edge(X,Y).",
      "q(X,Y) :- edge(X,Y) & !p(Y,X).",
  });
  Result<MagicProgram> m = MagicTransform(rules, BoundFirst("q", 1), &pool_);
  EXPECT_TRUE(m.status().IsCompileError());
}

TEST_F(MagicTest, UnknownQueryPredicateRejected) {
  NailRuleVec rules = Rules({"p(X,Y) :- edge(X,Y)."});
  Result<MagicProgram> m =
      MagicTransform(rules, BoundFirst("zzz", 1), &pool_);
  EXPECT_TRUE(m.status().IsInvalidArgument());
}

}  // namespace
}  // namespace gluenail
