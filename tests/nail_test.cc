/// End-to-end NAIL! tests: semi-naive recursion, stratified negation,
/// HiLog parameterized predicates and sets (paper §5), and the three
/// evaluation modes (direct, compiled-to-Glue, naive) held equal.

#include <gtest/gtest.h>

#include "src/api/engine.h"

namespace gluenail {
namespace {

class NailTest : public ::testing::TestWithParam<NailMode> {
 protected:
  NailTest() {
    EngineOptions opts;
    opts.nail_mode = GetParam();
    engine_ = std::make_unique<Engine>(opts);
  }

  void Load(std::string_view src) {
    Status s = engine_->LoadProgram(src);
    ASSERT_TRUE(s.ok()) << s;
  }

  std::string Ask(std::string_view goal) {
    Result<Engine::QueryResult> r = engine_->Query(goal);
    EXPECT_TRUE(r.ok()) << goal << ": " << r.status();
    if (!r.ok()) return "<error>";
    std::string out;
    for (size_t i = 0; i < r->rows.size(); ++i) {
      if (i != 0) out += ";";
      for (size_t j = 0; j < r->rows[i].size(); ++j) {
        if (j != 0) out += ",";
        out += engine_->terms().ToString(r->rows[i][j]);
      }
    }
    return out;
  }

  std::unique_ptr<Engine> engine_;
};

TEST_P(NailTest, NonRecursiveRule) {
  Load(R"(
module kb;
edb parent(X,Y);
grandparent(X,Z) :- parent(X,Y) & parent(Y,Z).
parent(abe, homer).
parent(homer, bart).
parent(homer, lisa).
end
)");
  EXPECT_EQ(Ask("grandparent(abe, Z)"), "bart;lisa");
}

TEST_P(NailTest, TransitiveClosure) {
  Load(R"(
module kb;
edb edge(X,Y);
path(X,Y) :- edge(X,Y).
path(X,Z) :- path(X,Y) & edge(Y,Z).
edge(1,2).
edge(2,3).
edge(3,1).
edge(4,5).
end
)");
  Result<Engine::QueryResult> r = engine_->Query("path(X,Y)");
  ASSERT_TRUE(r.ok());
  // The 3-cycle {1,2,3} gives 9 pairs, plus (4,5).
  EXPECT_EQ(r->rows.size(), 10u);
  EXPECT_EQ(Ask("path(1,Y)"), "1;2;3");
}

TEST_P(NailTest, LinearChainDepth) {
  // Deep recursion: 200-node chain.
  std::string src = "module kb;\nedb edge(X,Y);\n"
                    "path(X,Y) :- edge(X,Y).\n"
                    "path(X,Z) :- path(X,Y) & edge(Y,Z).\n";
  for (int i = 0; i < 200; ++i) {
    src += StrCat("edge(", i, ",", i + 1, ").\n");
  }
  src += "end\n";
  Load(src);
  Result<Engine::QueryResult> r = engine_->Query("path(0,Y)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 200u);
}

TEST_P(NailTest, MutualRecursion) {
  // Two predicates in one SCC.
  Load(R"(
module kb;
edb succ(X,Y);
even(X) :- zero(X).
even(Y) :- odd(X) & succ(X,Y).
odd(Y) :- even(X) & succ(X,Y).
zero(X) :- start(X).
edb start(X);
start(0).
succ(0,1). succ(1,2). succ(2,3). succ(3,4). succ(4,5).
end
)");
  EXPECT_EQ(Ask("even(X)"), "0;2;4");
  EXPECT_EQ(Ask("odd(X)"), "1;3;5");
}

TEST_P(NailTest, StratifiedNegation) {
  Load(R"(
module kb;
edb edge(X,Y), node(X);
reach(X) :- source(X).
reach(Y) :- reach(X) & edge(X,Y).
source(X) :- root(X).
edb root(X);
unreachable(X) :- node(X) & !reach(X).
root(1).
node(1). node(2). node(3). node(4).
edge(1,2). edge(2,3).
end
)");
  EXPECT_EQ(Ask("unreachable(X)"), "4");
}

TEST_P(NailTest, UnstratifiableProgramRejected) {
  Status s = engine_->LoadProgram(R"(
module kb;
edb base(X);
p(X) :- base(X) & !q(X).
q(X) :- base(X) & !p(X).
end
)");
  EXPECT_TRUE(s.IsCompileError()) << s;
}

TEST_P(NailTest, BuiltinComparisonsInRules) {
  Load(R"(
module kb;
edb num(X);
big(X) :- num(X) & X > 10.
double_val(X, Y) :- num(X) & Y = X * 2.
num(5). num(15). num(20).
end
)");
  EXPECT_EQ(Ask("big(X)"), "15;20");
  EXPECT_EQ(Ask("double_val(5, Y)"), "10");
}

TEST_P(NailTest, ParameterizedPredicates) {
  // §5.1: students(ID)(Student) as a NAIL!-defined HiLog family.
  Load(R"(
module kb;
edb attends(S, C), class_subject(C, Subj);
students(ID)(Student) :- class_subject(ID, _) & attends(Student, ID).
class_subject(cs99, databases).
class_subject(cs101, logic).
attends(wilson, cs99).
attends(green, cs99).
attends(jones, cs101).
end
)");
  // Direct instance query through the published relation.
  EXPECT_EQ(Ask("students(cs99)(S)"), "green;wilson");
  EXPECT_EQ(Ask("students(cs101)(S)"), "jones");
  // The whole family through a parameter variable.
  EXPECT_EQ(Ask("students(C)(S) & S = jones"), "cs101,jones");
}

TEST_P(NailTest, ClassInfoExampleFromPaper) {
  // §5.1's class_info program, rules plus EDB verbatim (modulo tas/2
  // argument order). The set-valued attributes hold predicate names.
  Load(R"(
module kb;
edb class_instructor(C,I), class_room(C,R), class_subject(C,S),
    failed_exam(P,S), attends(P,C);
class_info( ID, Instructor, Room, tas(ID), students(ID) ) :-
  class_instructor( ID, Instructor ) &
  class_room( ID, Room ).
tas(ID)(Ta) :-
  class_subject(ID, Subject) &
  failed_exam(Ta, Subject).
students(ID)(Student) :-
  class_subject(ID, _) &
  attends(Student, ID).
class_instructor( cs99, smith ).
class_room( cs99, mjh460a ).
class_subject( cs99, databases ).
failed_exam( jones, databases ).
attends( wilson, cs99 ).
attends( green, cs99 ).
end
)");
  // The paper's implied IDB tuples.
  EXPECT_EQ(Ask("students(cs99)(X)"), "green;wilson");
  EXPECT_EQ(Ask("tas(cs99)(X)"), "jones");
  // "class_info(C,I,R,T,S) & T(TA) & S(Student)" — set-valued attributes
  // dereferenced through HiLog variables (§5.1).
  EXPECT_EQ(Ask("class_info(C,I,R,T,S) & T(TA) & S(Student)"),
            "cs99,smith,mjh460a,tas(cs99),students(cs99),jones,green;"
            "cs99,smith,mjh460a,tas(cs99),students(cs99),jones,wilson");
}

TEST_P(NailTest, MetaProgrammingUniversalTransitiveClosure) {
  // §5.2: tc(E,X,Z) :- tc(E,X,Y) & E(Y,Z) — one universal transitive
  // closure over any edge relation named by E.
  Load(R"(
module kb;
edb rel(E), flight(X,Y), road(X,Y);
tc(E,X,Y) :- rel(E) & E(X,Y).
tc(E,X,Z) :- tc(E,X,Y) & E(Y,Z).
rel(flight).
rel(road).
flight(sfo, jfk).
flight(jfk, lhr).
road(1,2).
road(2,3).
end
)");
  EXPECT_EQ(Ask("tc(flight, sfo, Z)"), "jfk;lhr");
  EXPECT_EQ(Ask("tc(road, 1, Z)"), "2;3");
}

TEST_P(NailTest, NailPredicateAsGlueSubgoal) {
  // §2: EDB, NAIL!, and procedures are interchangeable as subgoals.
  Load(R"(
module kb;
edb edge(X,Y);
path(X,Y) :- edge(X,Y).
path(X,Z) :- path(X,Y) & edge(Y,Z).
edge(1,2). edge(2,3).
end
)");
  ASSERT_TRUE(
      engine_->ExecuteStatement("far(Y) := path(1, Y) & Y > 2.").ok());
  EXPECT_EQ(Ask("far(Y)"), "3");
}

TEST_P(NailTest, NailRecomputedOnEdbChange) {
  // §2: "use the current value ... derived from the current state of the
  // EDB".
  Load(R"(
module kb;
edb edge(X,Y);
path(X,Y) :- edge(X,Y).
path(X,Z) :- path(X,Y) & edge(Y,Z).
edge(1,2).
end
)");
  EXPECT_EQ(Ask("path(1,Y)"), "2");
  ASSERT_TRUE(engine_->AddFact("edge(2,5).").ok());
  EXPECT_EQ(Ask("path(1,Y)"), "2;5");
  ASSERT_TRUE(engine_->ExecuteStatement("edge(X,Y) -= edge(X,Y).").ok());
  EXPECT_EQ(Ask("path(1,Y)"), "");
}

TEST_P(NailTest, MemoizationAvoidsRecomputation) {
  Load(R"(
module kb;
edb edge(X,Y);
path(X,Y) :- edge(X,Y).
path(X,Z) :- path(X,Y) & edge(Y,Z).
edge(1,2). edge(2,3).
end
)");
  ASSERT_TRUE(engine_->Query("path(1,Y)").ok());
  uint64_t refreshes = engine_->nail_engine()->refresh_count();
  ASSERT_TRUE(engine_->Query("path(2,Y)").ok());
  ASSERT_TRUE(engine_->Query("path(X,3)").ok());
  EXPECT_EQ(engine_->nail_engine()->refresh_count(), refreshes);
  ASSERT_TRUE(engine_->AddFact("edge(3,4).").ok());
  ASSERT_TRUE(engine_->Query("path(1,Y)").ok());
  EXPECT_EQ(engine_->nail_engine()->refresh_count(), refreshes + 1);
}

TEST_P(NailTest, SameGenerationProgram) {
  // The classic non-linear Datalog benchmark program.
  Load(R"(
module kb;
edb up(X,Y), flat(X,Y), down(X,Y);
sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,U) & sg(U,V) & down(V,Y).
up(a, m1). up(b, m2).
flat(m1, m2).
down(m1, a). down(m2, b).
end
)");
  EXPECT_EQ(Ask("sg(a,Y)"), "b");
}

TEST_P(NailTest, MultipleStrataPipeline) {
  // Three strata: recursion, then negation over it, then projection.
  Load(R"(
module kb;
edb edge(X,Y), node(X);
path(X,Y) :- edge(X,Y).
path(X,Z) :- path(X,Y) & edge(Y,Z).
isolated(X) :- node(X) & !path(X, _) & !connected_in(X).
connected_in(Y) :- path(_, Y).
report(X) :- isolated(X).
node(1). node(2). node(3).
edge(1,2).
end
)");
  EXPECT_EQ(Ask("report(X)"), "3");
}

TEST_P(NailTest, RangeRestrictionViolationRejected) {
  Status s = engine_->LoadProgram(R"(
module kb;
edb base(X);
bad(X, Y) :- base(X).
end
)");
  EXPECT_TRUE(s.IsCompileError()) << s;
}

INSTANTIATE_TEST_SUITE_P(
    Modes, NailTest,
    ::testing::Values(NailMode::kDirect, NailMode::kCompiledGlue,
                      NailMode::kNaive),
    [](const ::testing::TestParamInfo<NailMode>& info) {
      switch (info.param) {
        case NailMode::kDirect:
          return "Direct";
        case NailMode::kCompiledGlue:
          return "CompiledGlue";
        case NailMode::kNaive:
          return "Naive";
      }
      return "?";
    });

}  // namespace
}  // namespace gluenail
