/// NAIL! edge cases: stratification structure, rule-graph corner cases,
/// constants in heads, deep strata, publication details.

#include <gtest/gtest.h>

#include "src/api/engine.h"
#include "src/nail/rule_graph.h"
#include "src/parser/parser.h"

namespace gluenail {
namespace {

std::vector<ast::NailRule> Rules(
    std::initializer_list<std::string_view> texts) {
  std::vector<ast::NailRule> out;
  for (std::string_view t : texts) {
    Result<ast::NailRule> r = ParseRule(t);
    EXPECT_TRUE(r.ok()) << t << ": " << r.status();
    if (r.ok()) out.push_back(std::move(*r));
  }
  return out;
}

TEST(RuleGraphTest, PredicatesKeyedByRootParamsArity) {
  TermPool pool;
  Result<NailProgram> prog = BuildNailProgram(
      Rules({
          "p(X) :- e(X).",
          "p(X,Y) :- e2(X,Y).",           // different arity: new pred
          "p(A)(X) :- e(A) & e(X).",      // parameterized: new pred
      }),
      &pool);
  ASSERT_TRUE(prog.ok()) << prog.status();
  EXPECT_EQ(prog->preds.size(), 3u);
  EXPECT_GE(prog->FindPred("p", 0, 1), 0);
  EXPECT_GE(prog->FindPred("p", 0, 2), 0);
  EXPECT_GE(prog->FindPred("p", 1, 1), 0);
  EXPECT_EQ(prog->FindPred("p", 2, 1), -1);
}

TEST(RuleGraphTest, SccAndTopologicalOrder) {
  TermPool pool;
  Result<NailProgram> prog = BuildNailProgram(
      Rules({
          "a(X) :- e(X).",
          "b(X) :- a(X).",
          "b(X) :- c(X).",
          "c(X) :- b(X).",  // b,c form one SCC
          "d(X) :- c(X).",
      }),
      &pool);
  ASSERT_TRUE(prog.ok()) << prog.status();
  // SCCs: {a}, {b,c}, {d} in dependency order.
  ASSERT_EQ(prog->scc_order.size(), 3u);
  auto scc_of = [&](const char* name) {
    return prog->preds[static_cast<size_t>(prog->FindPred(name, 0, 1))].scc;
  };
  EXPECT_EQ(scc_of("b"), scc_of("c"));
  EXPECT_NE(scc_of("a"), scc_of("b"));
  EXPECT_LT(scc_of("a"), scc_of("b"));
  EXPECT_LT(scc_of("b"), scc_of("d"));
  EXPECT_TRUE(prog->scc_recursive[static_cast<size_t>(scc_of("b"))]);
  EXPECT_FALSE(prog->scc_recursive[static_cast<size_t>(scc_of("a"))]);
}

TEST(RuleGraphTest, NegationAcrossStrataAllowed) {
  TermPool pool;
  EXPECT_TRUE(BuildNailProgram(
                  Rules({
                      "a(X) :- e(X).",
                      "b(X) :- e(X) & !a(X).",
                  }),
                  &pool)
                  .ok());
}

TEST(RuleGraphTest, SelfNegationRejected) {
  TermPool pool;
  Result<NailProgram> prog = BuildNailProgram(
      Rules({"p(X) :- e(X) & !p(X)."}), &pool);
  EXPECT_TRUE(prog.status().IsCompileError());
}

TEST(RuleGraphTest, UpdatesInRulesRejected) {
  TermPool pool;
  Result<ast::NailRule> r = ParseRule("p(X) :- e(X) & ++log(X).");
  ASSERT_TRUE(r.ok());
  std::vector<ast::NailRule> rules{std::move(*r)};
  EXPECT_TRUE(
      BuildNailProgram(std::move(rules), &pool).status().IsCompileError());
}

TEST(RuleGraphTest, AggregationInRulesRejected) {
  TermPool pool;
  Result<ast::NailRule> r = ParseRule("p(M) :- e(X) & M = max(X).");
  ASSERT_TRUE(r.ok());
  std::vector<ast::NailRule> rules{std::move(*r)};
  EXPECT_TRUE(
      BuildNailProgram(std::move(rules), &pool).status().IsCompileError());
}

class NailEdgeTest : public ::testing::TestWithParam<NailMode> {
 protected:
  NailEdgeTest() {
    EngineOptions opts;
    opts.nail_mode = GetParam();
    engine_ = std::make_unique<Engine>(opts);
  }
  std::unique_ptr<Engine> engine_;
};

TEST_P(NailEdgeTest, ConstantsInHeadsAndBodies) {
  ASSERT_TRUE(engine_->LoadProgram(R"(
module kb;
edb num(X);
special(99) :- num(1).
tagged(X, hot) :- num(X) & X > 5.
num(1). num(7).
end
)").ok());
  auto r = engine_->Query("special(X)");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(engine_->terms().IntValue(r->rows[0][0]), 99);
  auto t = engine_->Query("tagged(7, W)");
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->rows.size(), 1u);
  EXPECT_EQ(engine_->terms().SymbolName(t->rows[0][0]), "hot");
}

TEST_P(NailEdgeTest, DuplicateRulesAreHarmless) {
  ASSERT_TRUE(engine_->LoadProgram(R"(
module kb;
edb e(X);
p(X) :- e(X).
p(X) :- e(X).
e(1).
end
)").ok());
  auto r = engine_->Query("p(X)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 1u);
}

TEST_P(NailEdgeTest, RuleOverMissingEdbIsEmpty) {
  ASSERT_TRUE(engine_->LoadProgram(R"(
module kb;
edb declared_but_empty(X);
p(X) :- declared_but_empty(X).
end
)").ok());
  auto r = engine_->Query("p(X)");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());
}

TEST_P(NailEdgeTest, DeepStrataChain) {
  std::string src = "module kb;\nedb e(X);\np0(X) :- e(X).\n";
  for (int i = 1; i < 40; ++i) {
    src += StrCat("p", i, "(X) :- p", i - 1, "(X) & !q", i, "(X).\n");
    src += StrCat("q", i, "(X) :- p", i - 1, "(X) & X < ", i, ".\n");
  }
  src += "e(5). e(50).\nend\n";
  ASSERT_TRUE(engine_->LoadProgram(src).ok());
  // 5 survives every !q_i with i <= 5, dies at i = 6; 50 survives all.
  auto r = engine_->Query("p39(X)");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(engine_->terms().IntValue(r->rows[0][0]), 50);
}

TEST_P(NailEdgeTest, CycleWithSelfLoopNode) {
  ASSERT_TRUE(engine_->LoadProgram(R"(
module kb;
edb edge(X,Y);
path(X,Y) :- edge(X,Y).
path(X,Z) :- path(X,Y) & edge(Y,Z).
edge(1,1).
edge(1,2).
end
)").ok());
  auto r = engine_->Query("path(1,Y)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);  // (1,1), (1,2)
}

TEST_P(NailEdgeTest, NonLinearRecursion) {
  // path(X,Z) :- path(X,Y) & path(Y,Z): two recursive subgoals per rule,
  // exercising multiple semi-naive versions.
  ASSERT_TRUE(engine_->LoadProgram(R"(
module kb;
edb edge(X,Y);
path(X,Y) :- edge(X,Y).
path(X,Z) :- path(X,Y) & path(Y,Z).
edge(1,2). edge(2,3). edge(3,4). edge(4,5).
end
)").ok());
  auto r = engine_->Query("path(1,Y)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 4u);
}

TEST_P(NailEdgeTest, PublishedInstancesVisibleViaContents) {
  ASSERT_TRUE(engine_->LoadProgram(R"(
module kb;
edb attends(S,C);
students(C)(S) :- attends(S, C).
attends(wilson, cs99).
end
)").ok());
  auto rows = engine_->RelationContents("students(cs99)", 1);
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 1u);
}

TEST_P(NailEdgeTest, GlueWritesInvalidateBetweenLoopIterations) {
  // A repeat loop that grows the EDB each pass; the NAIL! view must track
  // it (recomputation inside a procedure's loop).
  ASSERT_TRUE(engine_->LoadProgram(R"(
module kb;
edb n(X), out(X);
export pump(:);
double_view(Y) :- n(X) & Y = X * 2.
proc pump(:)
  repeat
    n(Y) += double_view(Y) & Y < 20.
  until unchanged(n(_));
  out(X) := n(X).
  return(:) := true.
end
n(1).
end
)").ok());
  ASSERT_TRUE(engine_->Call("pump", {{}}).ok());
  auto r = engine_->Query("out(X)");
  ASSERT_TRUE(r.ok());
  // 1 -> 2 -> 4 -> 8 -> 16 -> (32 blocked by Y<20 guard)
  EXPECT_EQ(r->rows.size(), 5u);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, NailEdgeTest,
    ::testing::Values(NailMode::kDirect, NailMode::kCompiledGlue,
                      NailMode::kNaive),
    [](const ::testing::TestParamInfo<NailMode>& info) {
      switch (info.param) {
        case NailMode::kDirect:
          return "Direct";
        case NailMode::kCompiledGlue:
          return "CompiledGlue";
        case NailMode::kNaive:
          return "Naive";
      }
      return "?";
    });

}  // namespace
}  // namespace gluenail
