/// Unit tests for the aggregate operators of §3.3.

#include "src/runtime/aggregates.h"

#include <gtest/gtest.h>

#include <cmath>

namespace gluenail {
namespace {

class AggregatesTest : public ::testing::Test {
 protected:
  Result<TermId> Run(AggKind kind, std::initializer_list<double> values,
                     bool as_int = false) {
    Aggregator agg(kind, &pool_);
    for (double v : values) {
      TermId t = as_int ? pool_.MakeInt(static_cast<int64_t>(v))
                        : pool_.MakeFloat(v);
      Status s = agg.Add(t);
      if (!s.ok()) return s;
    }
    return agg.Finish(&pool_);
  }

  TermPool pool_;
};

TEST_F(AggregatesTest, NamesRoundTrip) {
  for (AggKind k : {AggKind::kMin, AggKind::kMax, AggKind::kMean,
                    AggKind::kSum, AggKind::kProduct, AggKind::kArbitrary,
                    AggKind::kStdDev, AggKind::kCount}) {
    std::optional<AggKind> back = AggKindFromName(AggKindName(k));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, k);
  }
  EXPECT_FALSE(AggKindFromName("median").has_value());
}

TEST_F(AggregatesTest, MinMaxNumeric) {
  Result<TermId> lo = Run(AggKind::kMin, {3, 1, 2}, /*as_int=*/true);
  ASSERT_TRUE(lo.ok());
  EXPECT_EQ(pool_.IntValue(*lo), 1);
  Result<TermId> hi = Run(AggKind::kMax, {3, 1, 2}, /*as_int=*/true);
  ASSERT_TRUE(hi.ok());
  EXPECT_EQ(pool_.IntValue(*hi), 3);
}

TEST_F(AggregatesTest, MinMaxOverSymbolsUsesTermOrder) {
  Aggregator agg(AggKind::kMin, &pool_);
  ASSERT_TRUE(agg.Add(pool_.MakeSymbol("pear")).ok());
  ASSERT_TRUE(agg.Add(pool_.MakeSymbol("apple")).ok());
  Result<TermId> r = agg.Finish(&pool_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(pool_.SymbolName(*r), "apple");
}

TEST_F(AggregatesTest, SumStaysIntegerForIntegers) {
  Result<TermId> r = Run(AggKind::kSum, {1, 2, 3}, /*as_int=*/true);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(pool_.IsInt(*r));
  EXPECT_EQ(pool_.IntValue(*r), 6);
}

TEST_F(AggregatesTest, SumWidensWithFloats) {
  Aggregator agg(AggKind::kSum, &pool_);
  ASSERT_TRUE(agg.Add(pool_.MakeInt(1)).ok());
  ASSERT_TRUE(agg.Add(pool_.MakeFloat(0.5)).ok());
  Result<TermId> r = agg.Finish(&pool_);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(pool_.IsFloat(*r));
  EXPECT_DOUBLE_EQ(pool_.FloatValue(*r), 1.5);
}

TEST_F(AggregatesTest, MeanIsAlwaysFloat) {
  Result<TermId> r = Run(AggKind::kMean, {1, 2}, /*as_int=*/true);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(pool_.IsFloat(*r));
  EXPECT_DOUBLE_EQ(pool_.FloatValue(*r), 1.5);
}

TEST_F(AggregatesTest, ProductInt) {
  Result<TermId> r = Run(AggKind::kProduct, {2, 3, 4}, /*as_int=*/true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(pool_.IntValue(*r), 24);
}

TEST_F(AggregatesTest, StdDevPopulation) {
  Result<TermId> r = Run(AggKind::kStdDev, {2, 4, 4, 4, 5, 5, 7, 9});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(pool_.FloatValue(*r), 2.0, 1e-9);
}

TEST_F(AggregatesTest, CountIgnoresValues) {
  Aggregator agg(AggKind::kCount, &pool_);
  ASSERT_TRUE(agg.Add(pool_.MakeSymbol("anything")).ok());
  ASSERT_TRUE(agg.Add(pool_.MakeSymbol("anything")).ok());  // duplicates too
  Result<TermId> r = agg.Finish(&pool_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(pool_.IntValue(*r), 2);
}

TEST_F(AggregatesTest, CountOfEmptyIsZero) {
  Aggregator agg(AggKind::kCount, &pool_);
  Result<TermId> r = agg.Finish(&pool_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(pool_.IntValue(*r), 0);
}

TEST_F(AggregatesTest, OtherAggregatesErrorOnEmpty) {
  for (AggKind k : {AggKind::kMin, AggKind::kMax, AggKind::kMean,
                    AggKind::kSum, AggKind::kProduct, AggKind::kArbitrary,
                    AggKind::kStdDev}) {
    Aggregator agg(k, &pool_);
    EXPECT_TRUE(agg.Finish(&pool_).status().IsRuntimeError())
        << AggKindName(k);
  }
}

TEST_F(AggregatesTest, NumericAggregatesRejectSymbols) {
  for (AggKind k : {AggKind::kMean, AggKind::kSum, AggKind::kProduct,
                    AggKind::kStdDev}) {
    Aggregator agg(k, &pool_);
    EXPECT_TRUE(agg.Add(pool_.MakeSymbol("x")).IsRuntimeError())
        << AggKindName(k);
  }
}

TEST_F(AggregatesTest, ArbitraryIsDeterministicSmallest) {
  Aggregator agg(AggKind::kArbitrary, &pool_);
  ASSERT_TRUE(agg.Add(pool_.MakeInt(5)).ok());
  ASSERT_TRUE(agg.Add(pool_.MakeInt(2)).ok());
  ASSERT_TRUE(agg.Add(pool_.MakeInt(9)).ok());
  Result<TermId> r = agg.Finish(&pool_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(pool_.IntValue(*r), 2);
}

/// Property sweep: mean/sum/std_dev agree with a reference computation on
/// arithmetic sequences of varying length.
class AggregatePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AggregatePropertyTest, MatchesReference) {
  int n = GetParam();
  TermPool pool;
  Aggregator sum(AggKind::kSum, &pool);
  Aggregator mean(AggKind::kMean, &pool);
  Aggregator sd(AggKind::kStdDev, &pool);
  double ref_sum = 0;
  std::vector<double> xs;
  for (int i = 1; i <= n; ++i) {
    double v = 1.5 * i;
    xs.push_back(v);
    ref_sum += v;
    ASSERT_TRUE(sum.Add(pool.MakeFloat(v)).ok());
    ASSERT_TRUE(mean.Add(pool.MakeFloat(v)).ok());
    ASSERT_TRUE(sd.Add(pool.MakeFloat(v)).ok());
  }
  double ref_mean = ref_sum / n;
  double ref_var = 0;
  for (double v : xs) ref_var += (v - ref_mean) * (v - ref_mean);
  ref_var /= n;
  EXPECT_NEAR(pool.FloatValue(*sum.Finish(&pool)), ref_sum, 1e-6);
  EXPECT_NEAR(pool.FloatValue(*mean.Finish(&pool)), ref_mean, 1e-9);
  EXPECT_NEAR(pool.FloatValue(*sd.Finish(&pool)), std::sqrt(ref_var), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sizes, AggregatePropertyTest,
                         ::testing::Values(1, 2, 3, 7, 64, 1000));

}  // namespace
}  // namespace gluenail
