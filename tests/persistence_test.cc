#include "src/storage/persistence.h"

#include <gtest/gtest.h>

#include <sstream>

namespace gluenail {
namespace {

class PersistenceTest : public ::testing::Test {
 protected:
  PersistenceTest() : db_(&pool_) {}

  TermId Term(std::string_view text) {
    Result<TermId> r = ParseGroundTerm(&pool_, text);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? *r : kNullTerm;
  }

  TermPool pool_;
  Database db_;
};

TEST_F(PersistenceTest, ParseGroundTermAtoms) {
  EXPECT_EQ(Term("abc"), pool_.MakeSymbol("abc"));
  EXPECT_EQ(Term("'Hello world'"), pool_.MakeSymbol("Hello world"));
  EXPECT_EQ(Term("42"), pool_.MakeInt(42));
  EXPECT_EQ(Term("-7"), pool_.MakeInt(-7));
  EXPECT_EQ(Term("2.5"), pool_.MakeFloat(2.5));
  EXPECT_EQ(Term("1.5e3"), pool_.MakeFloat(1500.0));
}

TEST_F(PersistenceTest, ParseGroundTermCompound) {
  TermId t = Term("edge(1,2)");
  ASSERT_TRUE(pool_.IsCompound(t));
  EXPECT_EQ(pool_.Functor(t), pool_.MakeSymbol("edge"));
  EXPECT_EQ(pool_.Args(t)[0], pool_.MakeInt(1));
}

TEST_F(PersistenceTest, ParseGroundTermNested) {
  TermId t = Term("p(f(1,g(a)),b)");
  ASSERT_TRUE(pool_.IsCompound(t));
  TermId f = pool_.Args(t)[0];
  ASSERT_TRUE(pool_.IsCompound(f));
  EXPECT_EQ(pool_.Functor(f), pool_.MakeSymbol("f"));
}

TEST_F(PersistenceTest, ParseGroundTermHiLogApplication) {
  TermId t = Term("students(cs99)(wilson)");
  ASSERT_TRUE(pool_.IsCompound(t));
  TermId name = pool_.Functor(t);
  ASSERT_TRUE(pool_.IsCompound(name));
  EXPECT_EQ(pool_.ToString(name), "students(cs99)");
}

TEST_F(PersistenceTest, ParseGroundTermErrors) {
  EXPECT_FALSE(ParseGroundTerm(&pool_, "").ok());
  EXPECT_FALSE(ParseGroundTerm(&pool_, "p(").ok());
  EXPECT_FALSE(ParseGroundTerm(&pool_, "p(1,)").ok());
  EXPECT_FALSE(ParseGroundTerm(&pool_, "p(1) extra").ok());
  EXPECT_FALSE(ParseGroundTerm(&pool_, "'unterminated").ok());
  EXPECT_FALSE(ParseGroundTerm(&pool_, ")").ok());
}

TEST_F(PersistenceTest, LoadFacts) {
  std::istringstream in(
      "% a comment\n"
      "edge(1,2).\n"
      "edge(2,3).\n"
      "\n"
      "tolerance(2.5).\n"
      "name('San Francisco').\n");
  ASSERT_TRUE(LoadDatabase(&db_, in).ok());
  Relation* edge = db_.Find(pool_.MakeSymbol("edge"), 2);
  ASSERT_NE(edge, nullptr);
  EXPECT_EQ(edge->size(), 2u);
  Relation* name = db_.Find(pool_.MakeSymbol("name"), 1);
  ASSERT_NE(name, nullptr);
  EXPECT_TRUE(name->Contains(Tuple{pool_.MakeSymbol("San Francisco")}));
}

TEST_F(PersistenceTest, LoadZeroArityFact) {
  std::istringstream in("initialized.\n");
  ASSERT_TRUE(LoadDatabase(&db_, in).ok());
  Relation* r = db_.Find(pool_.MakeSymbol("initialized"), 0);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->size(), 1u);
}

TEST_F(PersistenceTest, LoadParameterizedPredicate) {
  std::istringstream in(
      "students(cs99)(wilson).\n"
      "students(cs99)(green).\n"
      "students(cs101)(jones).\n");
  ASSERT_TRUE(LoadDatabase(&db_, in).ok());
  std::vector<TermId> args{pool_.MakeSymbol("cs99")};
  Relation* r = db_.Find(pool_.MakeCompound("students", args), 1);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->size(), 2u);
}

TEST_F(PersistenceTest, LoadRejectsMissingDot) {
  std::istringstream in("edge(1,2)\n");
  Status s = LoadDatabase(&db_, in);
  EXPECT_TRUE(s.IsParseError());
}

TEST_F(PersistenceTest, LoadRejectsNumberFact) {
  std::istringstream in("42.\n");
  // "42." reads as the float 42.? No: '.' not followed by a digit is the
  // terminator, so this is the integer fact 42 — which is not a valid
  // predicate name.
  Status s = LoadDatabase(&db_, in);
  EXPECT_TRUE(s.IsParseError());
}

TEST_F(PersistenceTest, SaveLoadRoundTrip) {
  Relation* edge = db_.GetOrCreate(pool_.MakeSymbol("edge"), 2);
  edge->Insert(Tuple{pool_.MakeInt(1), pool_.MakeInt(2)});
  edge->Insert(Tuple{pool_.MakeInt(2), pool_.MakeInt(3)});
  Relation* t = db_.GetOrCreate(pool_.MakeSymbol("tolerance"), 1);
  t->Insert(Tuple{pool_.MakeFloat(2.5)});
  std::vector<TermId> args{pool_.MakeSymbol("cs99")};
  Relation* st = db_.GetOrCreate(pool_.MakeCompound("students", args), 1);
  st->Insert(Tuple{pool_.MakeSymbol("wilson")});
  Relation* flag = db_.GetOrCreate(pool_.MakeSymbol("flag"), 0);
  flag->Insert(Tuple{});

  std::ostringstream out;
  ASSERT_TRUE(SaveDatabase(db_, out).ok());

  TermPool pool2;
  Database db2(&pool2);
  std::istringstream in(out.str());
  ASSERT_TRUE(LoadDatabase(&db2, in).ok());

  Relation* edge2 = db2.Find(pool2.MakeSymbol("edge"), 2);
  ASSERT_NE(edge2, nullptr);
  EXPECT_EQ(edge2->size(), 2u);
  EXPECT_TRUE(
      edge2->Contains(Tuple{pool2.MakeInt(1), pool2.MakeInt(2)}));
  Relation* t2 = db2.Find(pool2.MakeSymbol("tolerance"), 1);
  ASSERT_NE(t2, nullptr);
  EXPECT_TRUE(t2->Contains(Tuple{pool2.MakeFloat(2.5)}));
  std::vector<TermId> args2{pool2.MakeSymbol("cs99")};
  Relation* st2 = db2.Find(pool2.MakeCompound("students", args2), 1);
  ASSERT_NE(st2, nullptr);
  EXPECT_EQ(st2->size(), 1u);
  Relation* flag2 = db2.Find(pool2.MakeSymbol("flag"), 0);
  ASSERT_NE(flag2, nullptr);
  EXPECT_EQ(flag2->size(), 1u);
}

TEST_F(PersistenceTest, SaveRoundTripsQuotedAndNumericEdgeCases) {
  Relation* r = db_.GetOrCreate(pool_.MakeSymbol("misc"), 1);
  r->Insert(Tuple{pool_.MakeSymbol("it's got 'quotes'")});
  r->Insert(Tuple{pool_.MakeSymbol("Line\nbreak")});
  r->Insert(Tuple{pool_.MakeFloat(1.0)});
  r->Insert(Tuple{pool_.MakeInt(1)});

  std::ostringstream out;
  ASSERT_TRUE(SaveDatabase(db_, out).ok());
  TermPool pool2;
  Database db2(&pool2);
  std::istringstream in(out.str());
  ASSERT_TRUE(LoadDatabase(&db2, in).ok()) << out.str();
  Relation* r2 = db2.Find(pool2.MakeSymbol("misc"), 1);
  ASSERT_NE(r2, nullptr);
  EXPECT_EQ(r2->size(), 4u);
  EXPECT_TRUE(r2->Contains(Tuple{pool2.MakeSymbol("it's got 'quotes'")}));
  EXPECT_TRUE(r2->Contains(Tuple{pool2.MakeFloat(1.0)}));
  EXPECT_TRUE(r2->Contains(Tuple{pool2.MakeInt(1)}));
}

TEST_F(PersistenceTest, FileRoundTrip) {
  Relation* edge = db_.GetOrCreate(pool_.MakeSymbol("edge"), 2);
  edge->Insert(Tuple{pool_.MakeInt(10), pool_.MakeInt(20)});
  const std::string path = testing::TempDir() + "/gluenail_edb_test.facts";
  ASSERT_TRUE(SaveDatabaseToFile(db_, path).ok());
  TermPool pool2;
  Database db2(&pool2);
  ASSERT_TRUE(LoadDatabaseFromFile(&db2, path).ok());
  Relation* edge2 = db2.Find(pool2.MakeSymbol("edge"), 2);
  ASSERT_NE(edge2, nullptr);
  EXPECT_EQ(edge2->size(), 1u);
}

TEST_F(PersistenceTest, MissingFileReportsIoError) {
  EXPECT_TRUE(
      LoadDatabaseFromFile(&db_, "/nonexistent/path/x.facts").IsIoError());
}

// --- v2 format and edge-case round-trips -----------------------------------

namespace {

/// Round-trips \p db through serialization into \p db2 (fresh pool).
void RoundTrip(const Database& db, Database* db2) {
  std::ostringstream out;
  ASSERT_TRUE(SaveDatabase(db, out).ok());
  std::istringstream in(out.str());
  ASSERT_TRUE(LoadDatabase(db2, in).ok()) << out.str();
}

}  // namespace

TEST_F(PersistenceTest, SerializeEmitsChecksummedHeader) {
  db_.GetOrCreate(pool_.MakeSymbol("edge"), 2)
      ->Insert(Tuple{pool_.MakeInt(1), pool_.MakeInt(2)});
  std::string text = SerializeDatabase(db_);
  EXPECT_TRUE(text.rfind("%% gluenail-edb v2 ", 0) == 0) << text;
  EXPECT_NE(text.find("relations=1"), std::string::npos);
  EXPECT_NE(text.find("tuples=1"), std::string::npos);
  EXPECT_NE(text.find("checksum="), std::string::npos);
  EXPECT_NE(text.find("% edge/2: 1 tuples checksum="), std::string::npos);
}

TEST_F(PersistenceTest, RoundTripsQuotedSymbolsWithEscapes) {
  Relation* r = db_.GetOrCreate(pool_.MakeSymbol("q"), 1);
  std::vector<std::string> names = {
      "it's",  "back\\slash", "tab\there", "new\nline",
      "quoted 'inner' text", "trailing space ", " leading",
      "mixed \\' both \\\\ ways",
  };
  for (const std::string& n : names) {
    r->Insert(Tuple{pool_.MakeSymbol(n)});
  }
  TermPool pool2;
  Database db2(&pool2);
  RoundTrip(db_, &db2);
  Relation* r2 = db2.Find(pool2.MakeSymbol("q"), 1);
  ASSERT_NE(r2, nullptr);
  EXPECT_EQ(r2->size(), names.size());
  for (const std::string& n : names) {
    EXPECT_TRUE(r2->Contains(Tuple{pool2.MakeSymbol(n)})) << n;
  }
}

TEST_F(PersistenceTest, RoundTripsNegativeExponentFloats) {
  Relation* r = db_.GetOrCreate(pool_.MakeSymbol("f"), 1);
  std::vector<double> values = {-1.5e-7, 2.5e-300, -3e15, 1e-9, -0.0625};
  for (double v : values) r->Insert(Tuple{pool_.MakeFloat(v)});
  TermPool pool2;
  Database db2(&pool2);
  RoundTrip(db_, &db2);
  Relation* r2 = db2.Find(pool2.MakeSymbol("f"), 1);
  ASSERT_NE(r2, nullptr);
  EXPECT_EQ(r2->size(), values.size());
  for (double v : values) {
    EXPECT_TRUE(r2->Contains(Tuple{pool2.MakeFloat(v)})) << v;
  }
}

TEST_F(PersistenceTest, RoundTripsArityZeroAndEmptyRelations) {
  db_.GetOrCreate(pool_.MakeSymbol("flag"), 0)->Insert(Tuple{});
  db_.GetOrCreate(pool_.MakeSymbol("empty"), 3);  // zero tuples
  TermPool pool2;
  Database db2(&pool2);
  RoundTrip(db_, &db2);
  Relation* flag = db2.Find(pool2.MakeSymbol("flag"), 0);
  ASSERT_NE(flag, nullptr);
  EXPECT_EQ(flag->size(), 1u);
  // v2 sections recreate even empty relations.
  Relation* empty = db2.Find(pool2.MakeSymbol("empty"), 3);
  ASSERT_NE(empty, nullptr);
  EXPECT_EQ(empty->size(), 0u);
}

TEST_F(PersistenceTest, LoadsCrlfFilesWithValidChecksums) {
  db_.GetOrCreate(pool_.MakeSymbol("edge"), 2)
      ->Insert(Tuple{pool_.MakeInt(1), pool_.MakeInt(2)});
  std::string text = SerializeDatabase(db_);
  // Simulate a Windows checkout: every LF becomes CRLF.
  std::string crlf;
  for (char c : text) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  TermPool pool2;
  Database db2(&pool2);
  std::istringstream in(crlf);
  ASSERT_TRUE(LoadDatabase(&db2, in).ok());
  Relation* edge = db2.Find(pool2.MakeSymbol("edge"), 2);
  ASSERT_NE(edge, nullptr);
  EXPECT_EQ(edge->size(), 1u);
}

TEST_F(PersistenceTest, RoundTripsRelationLargerThan64kTuples) {
  Relation* big = db_.GetOrCreate(pool_.MakeSymbol("big"), 2);
  constexpr int kN = 70000;  // > 64k: spans many arena chunks / file writes
  for (int i = 0; i < kN; ++i) {
    big->Insert(Tuple{pool_.MakeInt(i), pool_.MakeInt(i + 1)});
  }
  const std::string path = testing::TempDir() + "/gluenail_big.facts";
  ASSERT_TRUE(SaveDatabaseToFile(db_, path).ok());
  TermPool pool2;
  Database db2(&pool2);
  ASSERT_TRUE(LoadDatabaseFromFile(&db2, path).ok());
  Relation* big2 = db2.Find(pool2.MakeSymbol("big"), 2);
  ASSERT_NE(big2, nullptr);
  EXPECT_EQ(big2->size(), static_cast<size_t>(kN));
  EXPECT_TRUE(big2->Contains(
      Tuple{pool2.MakeInt(kN - 1), pool2.MakeInt(kN)}));
  ::remove(path.c_str());
}

TEST_F(PersistenceTest, CorruptedFileFailsStrictLoadAllOrNothing) {
  db_.GetOrCreate(pool_.MakeSymbol("edge"), 2)
      ->Insert(Tuple{pool_.MakeInt(1), pool_.MakeInt(2)});
  std::string text = SerializeDatabase(db_);
  text[text.find("edge(1,2).") + 5] = '7';  // flip a byte in a fact

  TermPool pool2;
  Database db2(&pool2);
  db2.GetOrCreate(pool2.MakeSymbol("keep"), 1)
      ->Insert(Tuple{pool2.MakeInt(1)});
  std::istringstream in(text);
  Status st = LoadDatabase(&db2, in);
  EXPECT_TRUE(st.IsIoError()) << st;
  EXPECT_EQ(db2.num_relations(), 1u);  // destination untouched
}

TEST_F(PersistenceTest, TamperedHeaderCountFailsStrictLoad) {
  db_.GetOrCreate(pool_.MakeSymbol("edge"), 2)
      ->Insert(Tuple{pool_.MakeInt(1), pool_.MakeInt(2)});
  std::string text = SerializeDatabase(db_);
  size_t at = text.find("relations=1");
  ASSERT_NE(at, std::string::npos);
  text[at + std::string("relations=").size()] = '3';
  TermPool pool2;
  Database db2(&pool2);
  std::istringstream in(text);
  EXPECT_FALSE(LoadDatabase(&db2, in).ok());
  EXPECT_EQ(db2.num_relations(), 0u);
}

TEST_F(PersistenceTest, LegacyHeaderlessFilesStillLoad) {
  std::istringstream in(
      "% hand-written legacy file, no %% header\n"
      "edge(1,2).\n"
      "edge(2,3).\n");
  ASSERT_TRUE(LoadDatabase(&db_, in).ok());
  Relation* edge = db_.Find(pool_.MakeSymbol("edge"), 2);
  ASSERT_NE(edge, nullptr);
  EXPECT_EQ(edge->size(), 2u);
}

TEST_F(PersistenceTest, LegacyLoadIsAllOrNothingInStrictMode) {
  db_.GetOrCreate(pool_.MakeSymbol("keep"), 1)
      ->Insert(Tuple{pool_.MakeInt(1)});
  std::istringstream in(
      "edge(1,2).\n"
      "not a fact!!\n"
      "edge(2,3).\n");
  EXPECT_FALSE(LoadDatabase(&db_, in).ok());
  // The parse failure on line 2 must not leave line 1 behind.
  EXPECT_EQ(db_.Find(pool_.MakeSymbol("edge"), 2), nullptr);
  EXPECT_EQ(db_.num_relations(), 1u);
}

TEST_F(PersistenceTest, LegacySalvageSkipsBadLines) {
  std::istringstream in(
      "edge(1,2).\n"
      "not a fact!!\n"
      "edge(2,3).\n");
  LoadOptions opts;
  opts.recovery = RecoveryMode::kSalvage;
  Result<LoadReport> report = LoadDatabase(&db_, in, opts);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->facts_loaded, 2u);
  EXPECT_EQ(report->lines_dropped, 1u);
  ASSERT_EQ(report->dropped.size(), 1u);
  Relation* edge = db_.Find(pool_.MakeSymbol("edge"), 2);
  ASSERT_NE(edge, nullptr);
  EXPECT_EQ(edge->size(), 2u);
}

TEST_F(PersistenceTest, StreamSaveReportsFailedStream) {
  db_.GetOrCreate(pool_.MakeSymbol("edge"), 2)
      ->Insert(Tuple{pool_.MakeInt(1), pool_.MakeInt(2)});
  std::ostringstream os;
  os.setstate(std::ios::badbit);  // simulate a dead sink
  EXPECT_TRUE(SaveDatabase(db_, os).IsIoError());
}

}  // namespace
}  // namespace gluenail
