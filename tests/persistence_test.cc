#include "src/storage/persistence.h"

#include <gtest/gtest.h>

#include <sstream>

namespace gluenail {
namespace {

class PersistenceTest : public ::testing::Test {
 protected:
  PersistenceTest() : db_(&pool_) {}

  TermId Term(std::string_view text) {
    Result<TermId> r = ParseGroundTerm(&pool_, text);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? *r : kNullTerm;
  }

  TermPool pool_;
  Database db_;
};

TEST_F(PersistenceTest, ParseGroundTermAtoms) {
  EXPECT_EQ(Term("abc"), pool_.MakeSymbol("abc"));
  EXPECT_EQ(Term("'Hello world'"), pool_.MakeSymbol("Hello world"));
  EXPECT_EQ(Term("42"), pool_.MakeInt(42));
  EXPECT_EQ(Term("-7"), pool_.MakeInt(-7));
  EXPECT_EQ(Term("2.5"), pool_.MakeFloat(2.5));
  EXPECT_EQ(Term("1.5e3"), pool_.MakeFloat(1500.0));
}

TEST_F(PersistenceTest, ParseGroundTermCompound) {
  TermId t = Term("edge(1,2)");
  ASSERT_TRUE(pool_.IsCompound(t));
  EXPECT_EQ(pool_.Functor(t), pool_.MakeSymbol("edge"));
  EXPECT_EQ(pool_.Args(t)[0], pool_.MakeInt(1));
}

TEST_F(PersistenceTest, ParseGroundTermNested) {
  TermId t = Term("p(f(1,g(a)),b)");
  ASSERT_TRUE(pool_.IsCompound(t));
  TermId f = pool_.Args(t)[0];
  ASSERT_TRUE(pool_.IsCompound(f));
  EXPECT_EQ(pool_.Functor(f), pool_.MakeSymbol("f"));
}

TEST_F(PersistenceTest, ParseGroundTermHiLogApplication) {
  TermId t = Term("students(cs99)(wilson)");
  ASSERT_TRUE(pool_.IsCompound(t));
  TermId name = pool_.Functor(t);
  ASSERT_TRUE(pool_.IsCompound(name));
  EXPECT_EQ(pool_.ToString(name), "students(cs99)");
}

TEST_F(PersistenceTest, ParseGroundTermErrors) {
  EXPECT_FALSE(ParseGroundTerm(&pool_, "").ok());
  EXPECT_FALSE(ParseGroundTerm(&pool_, "p(").ok());
  EXPECT_FALSE(ParseGroundTerm(&pool_, "p(1,)").ok());
  EXPECT_FALSE(ParseGroundTerm(&pool_, "p(1) extra").ok());
  EXPECT_FALSE(ParseGroundTerm(&pool_, "'unterminated").ok());
  EXPECT_FALSE(ParseGroundTerm(&pool_, ")").ok());
}

TEST_F(PersistenceTest, LoadFacts) {
  std::istringstream in(
      "% a comment\n"
      "edge(1,2).\n"
      "edge(2,3).\n"
      "\n"
      "tolerance(2.5).\n"
      "name('San Francisco').\n");
  ASSERT_TRUE(LoadDatabase(&db_, in).ok());
  Relation* edge = db_.Find(pool_.MakeSymbol("edge"), 2);
  ASSERT_NE(edge, nullptr);
  EXPECT_EQ(edge->size(), 2u);
  Relation* name = db_.Find(pool_.MakeSymbol("name"), 1);
  ASSERT_NE(name, nullptr);
  EXPECT_TRUE(name->Contains(Tuple{pool_.MakeSymbol("San Francisco")}));
}

TEST_F(PersistenceTest, LoadZeroArityFact) {
  std::istringstream in("initialized.\n");
  ASSERT_TRUE(LoadDatabase(&db_, in).ok());
  Relation* r = db_.Find(pool_.MakeSymbol("initialized"), 0);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->size(), 1u);
}

TEST_F(PersistenceTest, LoadParameterizedPredicate) {
  std::istringstream in(
      "students(cs99)(wilson).\n"
      "students(cs99)(green).\n"
      "students(cs101)(jones).\n");
  ASSERT_TRUE(LoadDatabase(&db_, in).ok());
  std::vector<TermId> args{pool_.MakeSymbol("cs99")};
  Relation* r = db_.Find(pool_.MakeCompound("students", args), 1);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->size(), 2u);
}

TEST_F(PersistenceTest, LoadRejectsMissingDot) {
  std::istringstream in("edge(1,2)\n");
  Status s = LoadDatabase(&db_, in);
  EXPECT_TRUE(s.IsParseError());
}

TEST_F(PersistenceTest, LoadRejectsNumberFact) {
  std::istringstream in("42.\n");
  // "42." reads as the float 42.? No: '.' not followed by a digit is the
  // terminator, so this is the integer fact 42 — which is not a valid
  // predicate name.
  Status s = LoadDatabase(&db_, in);
  EXPECT_TRUE(s.IsParseError());
}

TEST_F(PersistenceTest, SaveLoadRoundTrip) {
  Relation* edge = db_.GetOrCreate(pool_.MakeSymbol("edge"), 2);
  edge->Insert(Tuple{pool_.MakeInt(1), pool_.MakeInt(2)});
  edge->Insert(Tuple{pool_.MakeInt(2), pool_.MakeInt(3)});
  Relation* t = db_.GetOrCreate(pool_.MakeSymbol("tolerance"), 1);
  t->Insert(Tuple{pool_.MakeFloat(2.5)});
  std::vector<TermId> args{pool_.MakeSymbol("cs99")};
  Relation* st = db_.GetOrCreate(pool_.MakeCompound("students", args), 1);
  st->Insert(Tuple{pool_.MakeSymbol("wilson")});
  Relation* flag = db_.GetOrCreate(pool_.MakeSymbol("flag"), 0);
  flag->Insert(Tuple{});

  std::ostringstream out;
  ASSERT_TRUE(SaveDatabase(db_, out).ok());

  TermPool pool2;
  Database db2(&pool2);
  std::istringstream in(out.str());
  ASSERT_TRUE(LoadDatabase(&db2, in).ok());

  Relation* edge2 = db2.Find(pool2.MakeSymbol("edge"), 2);
  ASSERT_NE(edge2, nullptr);
  EXPECT_EQ(edge2->size(), 2u);
  EXPECT_TRUE(
      edge2->Contains(Tuple{pool2.MakeInt(1), pool2.MakeInt(2)}));
  Relation* t2 = db2.Find(pool2.MakeSymbol("tolerance"), 1);
  ASSERT_NE(t2, nullptr);
  EXPECT_TRUE(t2->Contains(Tuple{pool2.MakeFloat(2.5)}));
  std::vector<TermId> args2{pool2.MakeSymbol("cs99")};
  Relation* st2 = db2.Find(pool2.MakeCompound("students", args2), 1);
  ASSERT_NE(st2, nullptr);
  EXPECT_EQ(st2->size(), 1u);
  Relation* flag2 = db2.Find(pool2.MakeSymbol("flag"), 0);
  ASSERT_NE(flag2, nullptr);
  EXPECT_EQ(flag2->size(), 1u);
}

TEST_F(PersistenceTest, SaveRoundTripsQuotedAndNumericEdgeCases) {
  Relation* r = db_.GetOrCreate(pool_.MakeSymbol("misc"), 1);
  r->Insert(Tuple{pool_.MakeSymbol("it's got 'quotes'")});
  r->Insert(Tuple{pool_.MakeSymbol("Line\nbreak")});
  r->Insert(Tuple{pool_.MakeFloat(1.0)});
  r->Insert(Tuple{pool_.MakeInt(1)});

  std::ostringstream out;
  ASSERT_TRUE(SaveDatabase(db_, out).ok());
  TermPool pool2;
  Database db2(&pool2);
  std::istringstream in(out.str());
  ASSERT_TRUE(LoadDatabase(&db2, in).ok()) << out.str();
  Relation* r2 = db2.Find(pool2.MakeSymbol("misc"), 1);
  ASSERT_NE(r2, nullptr);
  EXPECT_EQ(r2->size(), 4u);
  EXPECT_TRUE(r2->Contains(Tuple{pool2.MakeSymbol("it's got 'quotes'")}));
  EXPECT_TRUE(r2->Contains(Tuple{pool2.MakeFloat(1.0)}));
  EXPECT_TRUE(r2->Contains(Tuple{pool2.MakeInt(1)}));
}

TEST_F(PersistenceTest, FileRoundTrip) {
  Relation* edge = db_.GetOrCreate(pool_.MakeSymbol("edge"), 2);
  edge->Insert(Tuple{pool_.MakeInt(10), pool_.MakeInt(20)});
  const std::string path = testing::TempDir() + "/gluenail_edb_test.facts";
  ASSERT_TRUE(SaveDatabaseToFile(db_, path).ok());
  TermPool pool2;
  Database db2(&pool2);
  ASSERT_TRUE(LoadDatabaseFromFile(&db2, path).ok());
  Relation* edge2 = db2.Find(pool2.MakeSymbol("edge"), 2);
  ASSERT_NE(edge2, nullptr);
  EXPECT_EQ(edge2->size(), 1u);
}

TEST_F(PersistenceTest, MissingFileReportsIoError) {
  EXPECT_TRUE(
      LoadDatabaseFromFile(&db_, "/nonexistent/path/x.facts").IsIoError());
}

}  // namespace
}  // namespace gluenail
