/// End-to-end tests for Glue procedures (paper §4): in/return, local
/// relations, repeat/until with unchanged, call-once semantics, recursion,
/// and the fixed-procedure machinery.

#include <gtest/gtest.h>

#include <sstream>

#include "src/api/engine.h"

namespace gluenail {
namespace {

class ProceduresTest
    : public ::testing::TestWithParam<ExecOptions::Strategy> {
 protected:
  ProceduresTest() {
    EngineOptions opts;
    opts.exec.strategy = GetParam();
    engine_ = std::make_unique<Engine>(opts);
  }

  void Load(std::string_view src) {
    Status s = engine_->LoadProgram(src);
    ASSERT_TRUE(s.ok()) << s;
  }

  std::string Rows(const Result<std::vector<Tuple>>& r) {
    EXPECT_TRUE(r.ok()) << r.status();
    if (!r.ok()) return "<error>";
    std::string out;
    for (size_t i = 0; i < r->size(); ++i) {
      if (i != 0) out += ";";
      for (size_t j = 0; j < (*r)[i].size(); ++j) {
        if (j != 0) out += ",";
        out += engine_->terms().ToString((*r)[i][j]);
      }
    }
    return out;
  }

  Tuple T(std::initializer_list<int64_t> xs) {
    Tuple t;
    for (int64_t x : xs) t.push_back(*engine_->InternTerm(std::to_string(x)));
    return t;
  }

  std::unique_ptr<Engine> engine_;
};

constexpr std::string_view kTcModule = R"(
module graph;
edb e(X,Y);
export tc_e(X:Y);
procedure tc_e (X:Y)
rels connected(X,Y);
  connected(X,Y):= in(X) & e(X,Y).
  repeat
    connected(X,Y)+= connected(X,Z) & e(Z,Y).
  until unchanged( connected(_,_));
  return(X:Y):= connected(X,Y).
end
e(1,2).
e(2,3).
e(3,4).
e(5,6).
end
)";

TEST_P(ProceduresTest, PaperTcExample) {
  // §4 verbatim: reachability from a seed set.
  Load(kTcModule);
  EXPECT_EQ(Rows(engine_->Call("tc_e", {T({1})})), "1,2;1,3;1,4");
}

TEST_P(ProceduresTest, TcCalledOnceOnAllBindings) {
  // §4: "it is called once on all of the bindings for its input
  // arguments" — two seeds, one call.
  Load(kTcModule);
  EXPECT_EQ(Rows(engine_->Call("tc_e", {T({1}), T({5})})),
            "1,2;1,3;1,4;5,6");
}

TEST_P(ProceduresTest, TcAsSubgoal) {
  Load(kTcModule);
  ASSERT_TRUE(engine_->AddFact("seed(2).").ok());
  ASSERT_TRUE(
      engine_->ExecuteStatement("reach(Y) := seed(X) & tc_e(X, Y).").ok());
  Result<Engine::QueryResult> r = engine_->Query("reach(Y)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);  // 3, 4
}

TEST_P(ProceduresTest, ReturnRestrictsToInputExtension) {
  // The implicit `in` subgoal on return heads (§4).
  Load(R"(
module m;
edb p(X,Y);
export lookup(X:Y);
proc lookup(X:Y)
  return(X:Y) := p(X,Y).
end
p(1,10).
p(2,20).
end
)");
  // Only tuples extending the inputs come back.
  EXPECT_EQ(Rows(engine_->Call("lookup", {T({1})})), "1,10");
}

TEST_P(ProceduresTest, ReturnExitsImmediately) {
  // Statements after a return assignment never run (§4: assigning to
  // return exits).
  Load(R"(
module m;
edb marker(X);
export f(:X);
proc f(:X)
  return(:X) := true & X = 42.
  marker(99) += true.
end
end
)");
  EXPECT_EQ(Rows(engine_->Call("f", {Tuple{}})), "42");
  Result<Engine::QueryResult> r = engine_->Query("marker(X)");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());
}

TEST_P(ProceduresTest, SetEqFromPaper) {
  // §5.1's set_eq procedure, comparing sets member-wise.
  Load(R"(
module sets;
export set_eq(S,T:);
proc set_eq( S, T: )
rels different(S,T);
  different(S,T):= in(S,T) & S(X) & !T(X).
  different(S,T)+= in(S,T) & T(X) & !S(X).
  return(S,T:):= !different(S,T).
end
a(1). a(2).
b(1). b(2).
c(1).
end
)");
  auto name = [&](const char* n) { return *engine_->InternTerm(n); };
  EXPECT_EQ(Rows(engine_->Call("set_eq", {{name("a"), name("b")}})), "a,b");
  // Different members: empty result.
  EXPECT_EQ(Rows(engine_->Call("set_eq", {{name("a"), name("c")}})), "");
}

TEST_P(ProceduresTest, LocalRelationsAreFreshPerInvocation) {
  Load(R"(
module m;
export collect(X:C);
proc collect(X:C)
rels acc(V);
  acc(X) += in(X).
  return(X:C) := in(X) & acc(V) & C = count(V).
end
end
)");
  // If locals leaked across invocations the count would grow.
  EXPECT_EQ(Rows(engine_->Call("collect", {T({7})})), "7,1");
  EXPECT_EQ(Rows(engine_->Call("collect", {T({8})})), "8,1");
}

TEST_P(ProceduresTest, RecursivePeanoSum) {
  // Recursion with per-invocation locals: sum 0..N via self-call.
  Load(R"(
module m;
export sum_to(N:S);
proc sum_to(N:S)
rels smaller(M,S2);
  return(N:S) := in(N) & N = 0 & S = 0.
  smaller(M,S2) := in(N) & N > 0 & M = N - 1 & sum_to(M, S2).
  return(N:S) := in(N) & smaller(M,S2) & M = N - 1 & S = S2 + N.
end
end
)");
  EXPECT_EQ(Rows(engine_->Call("sum_to", {T({0})})), "0,0");
  EXPECT_EQ(Rows(engine_->Call("sum_to", {T({5})})), "5,15");
}

TEST_P(ProceduresTest, UnchangedIsFalseOnFirstEvaluation) {
  // A loop whose body changes nothing still runs at least twice: the
  // first unchanged() is always false (§4).
  Load(R"(
module m;
edb counterless(X);
export f(:);
proc f(:)
  repeat
    counterless(1) += true.
  until unchanged(counterless(_));
  return(:) := true.
end
end
)");
  ASSERT_TRUE(engine_->Call("f", {Tuple{}}).ok());
  // Loop ran: iteration 1 inserts (change), iteration 2 no change -> exit.
  EXPECT_GE(engine_->exec_stats().loop_iterations, 2u);
}

TEST_P(ProceduresTest, UntilEmptyAndNonEmptyTests) {
  Load(R"(
module m;
edb work(X), out(X);
export drain(:);
proc drain(:)
  repeat
    out(X) += work(X) & X = min(X) & --work(X).
  until empty(work(_));
  return(:) := true.
end
work(3). work(1). work(2).
end
)");
  ASSERT_TRUE(engine_->Call("drain", {Tuple{}}).ok());
  Result<Engine::QueryResult> r = engine_->Query("out(X)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 3u);
  Result<Engine::QueryResult> w = engine_->Query("work(X)");
  ASSERT_TRUE(w.ok());
  EXPECT_TRUE(w->rows.empty());
}

TEST_P(ProceduresTest, WriteGoesToConfiguredStream) {
  std::ostringstream out;
  engine_->SetIo(&out, nullptr);
  Load(R"(
module m;
export hello(:);
proc hello(:)
  return(:) := write('Hello, Glue!') & nl.
end
end
)");
  ASSERT_TRUE(engine_->Call("hello", {Tuple{}}).ok());
  EXPECT_EQ(out.str(), "Hello, Glue!\n");
}

TEST_P(ProceduresTest, ReadParsesTermsFromInput) {
  std::istringstream in("point(3,4)\n");
  engine_->SetIo(nullptr, &in);
  Load(R"(
module m;
edb got(X);
export ask(:);
proc ask(:)
  got(T) += read(T).
  return(:) := true.
end
end
)");
  ASSERT_TRUE(engine_->Call("ask", {Tuple{}}).ok());
  Result<Engine::QueryResult> r = engine_->Query("got(point(X,Y))");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
}

TEST_P(ProceduresTest, WritePrintsEachDistinctBindingOnce) {
  std::ostringstream out;
  engine_->SetIo(&out, nullptr);
  Load(R"(
module m;
edb p(X);
export dump(:);
proc dump(:)
  return(:) := p(X) & writeln(X).
end
p(2). p(1). p(2).
end
)");
  ASSERT_TRUE(engine_->Call("dump", {Tuple{}}).ok());
  EXPECT_EQ(out.str(), "1\n2\n");
}

TEST_P(ProceduresTest, ImportedProcedureAcrossModules) {
  Load(R"(
module lib;
export double(X:Y);
proc double(X:Y)
  return(X:Y) := in(X) & Y = X * 2.
end
end
module app;
from lib import double(X:Y);
edb n(X);
export run(:Y);
proc run(:Y)
  return(:Y) := n(X) & double(X, Y).
end
n(21).
end
)");
  EXPECT_EQ(Rows(engine_->Call("run", {Tuple{}})), "42");
}

TEST_P(ProceduresTest, UnimportedProcedureIsCompileError) {
  Status s = engine_->LoadProgram(R"(
module lib;
export double(X:Y);
proc double(X:Y)
  return(X:Y) := in(X) & Y = X * 2.
end
end
module app;
edb n(X);
export run(:Y);
proc run(:Y)
  return(:Y) := n(X) & double(X, Y).
end
end
)");
  EXPECT_TRUE(s.IsCompileError()) << s;
}

TEST_P(ProceduresTest, ImportRequiresExport) {
  Status s = engine_->LoadProgram(R"(
module lib;
proc secret(X:Y)
  return(X:Y) := in(X) & Y = X.
end
end
module app;
from lib import secret(X:Y);
end
)");
  EXPECT_TRUE(s.IsCompileError()) << s;
}

TEST_P(ProceduresTest, CallUnknownProcedureFails) {
  Load("module m; end");
  EXPECT_TRUE(engine_->Call("nothing", {}).status().IsNotFound());
}

TEST_P(ProceduresTest, FixedProcedurePropagation) {
  // g calls f which writes the EDB; both must be fixed, so neither may be
  // reordered — observable: compile succeeds and updates happen once per
  // distinct binding set.
  Load(R"(
module m;
edb log(X);
export g(:);
proc f(X:)
  log(X) += in(X).
  return(X:) := in(X).
end
proc g(:)
  return(:) := true & f(7).
end
end
)");
  ASSERT_TRUE(engine_->Call("g", {Tuple{}}).ok());
  Result<Engine::QueryResult> r = engine_->Query("log(X)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 1u);
}

TEST_P(ProceduresTest, InfiniteLoopIsGuarded) {
  EngineOptions opts;
  opts.exec.strategy = GetParam();
  opts.exec.max_loop_iterations = 100;
  Engine engine(opts);
  ASSERT_TRUE(engine.LoadProgram(R"(
module m;
edb flip(X);
export spin(:);
proc spin(:)
  repeat
    flip(1) += true.
    flip(1) -= flip(1).
  until empty(flip(0));
  return(:) := true.
end
flip(0).
end
)").ok());
  Status s = engine.Call("spin", {Tuple{}}).status();
  EXPECT_TRUE(s.IsRuntimeError()) << s;
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, ProceduresTest,
    ::testing::Values(ExecOptions::Strategy::kMaterialized,
                      ExecOptions::Strategy::kPipelined),
    [](const ::testing::TestParamInfo<ExecOptions::Strategy>& info) {
      return info.param == ExecOptions::Strategy::kMaterialized
                 ? "Materialized"
                 : "Pipelined";
    });

}  // namespace
}  // namespace gluenail
