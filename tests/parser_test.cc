#include "src/parser/parser.h"

#include <gtest/gtest.h>

namespace gluenail {
namespace {

using ast::AssignOp;
using ast::CompareOp;
using ast::Statement;
using ast::Subgoal;
using ast::SubgoalKind;
using ast::Term;
using ast::TermKind;
using ast::UntilCond;

// --- Terms -----------------------------------------------------------------

TEST(ParseTermTest, Atoms) {
  Result<Term> t = ParseTermText("wilson");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->kind, TermKind::kSymbol);
  EXPECT_EQ(t->name, "wilson");
}

TEST(ParseTermTest, NegativeLiteralsFoldSign) {
  Result<Term> t = ParseTermText("-2");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->kind, TermKind::kInt);
  EXPECT_EQ(t->int_value, -2);
  t = ParseTermText("-2.5");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->kind, TermKind::kFloat);
  EXPECT_DOUBLE_EQ(t->float_value, -2.5);
}

TEST(ParseTermTest, Compound) {
  Result<Term> t = ParseTermText("f(W,X)");
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->kind, TermKind::kApply);
  EXPECT_EQ(t->functor().name, "f");
  ASSERT_EQ(t->apply_arity(), 2u);
  EXPECT_EQ(t->arg(0).kind, TermKind::kVariable);
  EXPECT_EQ(t->arg(0).name, "W");
}

TEST(ParseTermTest, HiLogCurriedApplication) {
  Result<Term> t = ParseTermText("students(cs99)(wilson)");
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->kind, TermKind::kApply);
  EXPECT_EQ(t->functor().kind, TermKind::kApply);
  EXPECT_EQ(t->functor().functor().name, "students");
}

TEST(ParseTermTest, VariableFunctor) {
  // HiLog: E(Y,Z) — a variable in predicate position.
  Result<Term> t = ParseTermText("E(Y,Z)");
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->kind, TermKind::kApply);
  EXPECT_EQ(t->functor().kind, TermKind::kVariable);
  EXPECT_EQ(t->functor().name, "E");
}

TEST(ParseTermTest, ArithmeticPrecedence) {
  Result<Term> t = ParseTermText("A+B*C");
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->kind, TermKind::kApply);
  EXPECT_EQ(t->functor().name, "+");
  EXPECT_EQ(t->arg(1).functor().name, "*");
}

TEST(ParseTermTest, ParenthesesOverridePrecedence) {
  Result<Term> t = ParseTermText("(A+B)*C");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->functor().name, "*");
  EXPECT_EQ(t->arg(0).functor().name, "+");
}

TEST(ParseTermTest, ModOperator) {
  Result<Term> t = ParseTermText("X mod 3");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->functor().name, "mod");
}

TEST(ParseTermTest, Wildcard) {
  Result<Term> t = ParseTermText("p(_,X)");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->arg(0).kind, TermKind::kWildcard);
}

TEST(ParseTermTest, GroundnessCheck) {
  EXPECT_TRUE(ParseTermText("f(1,g(a))")->IsGround());
  EXPECT_FALSE(ParseTermText("f(1,g(X))")->IsGround());
  EXPECT_FALSE(ParseTermText("f(_,a)")->IsGround());
}

// --- Statements --------------------------------------------------------------

TEST(ParseStatementTest, PaperExampleInsertion) {
  // §3.1: r(X,Y) += s(X,W) & t(f(W,X),Y).
  Result<Statement> s = ParseStatement("r(X,Y) += s(X,W) & t(f(W,X),Y).");
  ASSERT_TRUE(s.ok()) << s.status();
  ASSERT_TRUE(s->is_assignment());
  const ast::Assignment& a = s->assignment();
  EXPECT_EQ(a.op, AssignOp::kInsert);
  EXPECT_EQ(a.head_pred.name, "r");
  ASSERT_EQ(a.body.size(), 2u);
  EXPECT_EQ(a.body[0].kind, SubgoalKind::kAtom);
  EXPECT_EQ(a.body[1].args[0].kind, TermKind::kApply);
}

TEST(ParseStatementTest, AllFourAssignmentOperators) {
  EXPECT_EQ(ParseStatement("p(X) := q(X).")->assignment().op,
            AssignOp::kClear);
  EXPECT_EQ(ParseStatement("p(X) += q(X).")->assignment().op,
            AssignOp::kInsert);
  EXPECT_EQ(ParseStatement("p(X) -= q(X).")->assignment().op,
            AssignOp::kDelete);
  Result<Statement> m = ParseStatement("p(K,V) +=[K] q(K,V).");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->assignment().op, AssignOp::kModify);
  EXPECT_EQ(m->assignment().modify_key,
            (std::vector<std::string>{"K"}));
}

TEST(ParseStatementTest, ModifyKeyMultipleVars) {
  Result<Statement> m = ParseStatement("p(A,B,V) +=[A,B] q(A,B,V).");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->assignment().modify_key,
            (std::vector<std::string>{"A", "B"}));
}

TEST(ParseStatementTest, IdentityMatrixExample) {
  // §3.1 example with a comparison subgoal.
  Result<Statement> s =
      ParseStatement("matrix(X,Y, 0.0)+= row(X) & row(Y) & X != Y.");
  ASSERT_TRUE(s.ok()) << s.status();
  const ast::Assignment& a = s->assignment();
  ASSERT_EQ(a.body.size(), 3u);
  EXPECT_EQ(a.body[2].kind, SubgoalKind::kComparison);
  EXPECT_EQ(a.body[2].cmp, CompareOp::kNe);
  EXPECT_EQ(a.head_args[2].kind, TermKind::kFloat);
}

TEST(ParseStatementTest, AggregationSubgoal) {
  // §3.3: max_temp(MaxT) := temperature(T) & MaxT = max(T).
  Result<Statement> s =
      ParseStatement("max_temp( MaxT ):= temperature( T ) & MaxT = max(T).");
  ASSERT_TRUE(s.ok()) << s.status();
  const ast::Assignment& a = s->assignment();
  ASSERT_EQ(a.body.size(), 2u);
  const Subgoal& agg = a.body[1];
  EXPECT_EQ(agg.kind, SubgoalKind::kComparison);
  EXPECT_EQ(agg.cmp, CompareOp::kEq);
  ASSERT_EQ(agg.rhs.kind, TermKind::kApply);
  EXPECT_EQ(agg.rhs.functor().name, "max");
}

TEST(ParseStatementTest, GroupBySubgoal) {
  Result<Statement> s = ParseStatement(
      "course_average( C, Average ):= course_student_grade(C,S,G) & "
      "group_by(C) & Average = mean(G).");
  ASSERT_TRUE(s.ok()) << s.status();
  const ast::Assignment& a = s->assignment();
  ASSERT_EQ(a.body.size(), 3u);
  EXPECT_EQ(a.body[1].kind, SubgoalKind::kGroupBy);
  ASSERT_EQ(a.body[1].args.size(), 1u);
  EXPECT_EQ(a.body[1].args[0].name, "C");
}

TEST(ParseStatementTest, GroupByRejectsNonVariables) {
  EXPECT_FALSE(ParseStatement("p(C) := q(C) & group_by(1).").ok());
}

TEST(ParseStatementTest, NegatedSubgoal) {
  Result<Statement> s =
      ParseStatement("different(S,T) := in(S,T) & S(X) & !T(X).");
  ASSERT_TRUE(s.ok()) << s.status();
  const ast::Assignment& a = s->assignment();
  ASSERT_EQ(a.body.size(), 3u);
  EXPECT_EQ(a.body[1].kind, SubgoalKind::kAtom);
  EXPECT_EQ(a.body[1].pred.kind, TermKind::kVariable);  // HiLog: S(X)
  EXPECT_EQ(a.body[2].kind, SubgoalKind::kNegatedAtom);
  EXPECT_EQ(a.body[2].pred.name, "T");
}

TEST(ParseStatementTest, BodyUpdateSubgoals) {
  Result<Statement> s =
      ParseStatement("log(K) += try(K) & --possible(K,D) & ++seen(K).");
  ASSERT_TRUE(s.ok()) << s.status();
  const ast::Assignment& a = s->assignment();
  EXPECT_EQ(a.body[1].kind, SubgoalKind::kDelete);
  EXPECT_EQ(a.body[2].kind, SubgoalKind::kInsert);
}

TEST(ParseStatementTest, ReturnHeadWithColon) {
  Result<Statement> s = ParseStatement("return(X:Y) := connected(X,Y).");
  ASSERT_TRUE(s.ok()) << s.status();
  const ast::Assignment& a = s->assignment();
  EXPECT_EQ(a.head_pred.name, "return");
  EXPECT_EQ(a.head_colon, 1);
  EXPECT_EQ(a.head_args.size(), 2u);
}

TEST(ParseStatementTest, ReturnHeadColonAtEnd) {
  // set_eq returns no free attributes: return(S,T:) := ...
  Result<Statement> s = ParseStatement("return(S,T:) := !different(S,T).");
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(s->assignment().head_colon, 2);
}

TEST(ParseStatementTest, ArithmeticComparisonSubgoal) {
  Result<Statement> s = ParseStatement(
      "near(Key) := element(Key,Xmin,Ymin) & tolerance(T) & "
      "(X-Xmin)*(X-Xmin) + (Y-Ymin)*(Y-Ymin) < T.");
  ASSERT_TRUE(s.ok()) << s.status();
  const Subgoal& cmp = s->assignment().body[2];
  EXPECT_EQ(cmp.kind, SubgoalKind::kComparison);
  EXPECT_EQ(cmp.cmp, CompareOp::kLt);
  EXPECT_EQ(cmp.lhs.functor().name, "+");
}

TEST(ParseStatementTest, HiLogHeadAssignment) {
  Result<Statement> s = ParseStatement("students(ID)(S) += attends(S, ID).");
  ASSERT_TRUE(s.ok()) << s.status();
  const ast::Assignment& a = s->assignment();
  EXPECT_EQ(a.head_pred.kind, TermKind::kApply);
  EXPECT_EQ(a.head_pred.functor().name, "students");
  EXPECT_EQ(a.head_args.size(), 1u);
}

TEST(ParseStatementTest, RepeatUntilUnchanged) {
  Result<Statement> s = ParseStatement(
      "repeat connected(X,Y)+= connected(X,Z) & e(Z,Y). "
      "until unchanged( connected(_,_));");
  ASSERT_TRUE(s.ok()) << s.status();
  ASSERT_FALSE(s->is_assignment());
  const ast::RepeatUntil& r = s->repeat();
  ASSERT_EQ(r.body.size(), 1u);
  EXPECT_EQ(r.cond.kind, UntilCond::Kind::kUnchanged);
  EXPECT_EQ(r.cond.pred.name, "connected");
  ASSERT_EQ(r.cond.args.size(), 2u);
  EXPECT_EQ(r.cond.args[0].kind, TermKind::kWildcard);
}

TEST(ParseStatementTest, BracedUntilConditionWithOr) {
  // Figure 1: until {confirmed(K) | empty(possible(K))};
  Result<Statement> s = ParseStatement(
      "repeat try(K) := possible(K,D). "
      "until {confirmed(K) | empty(possible(K))};");
  ASSERT_TRUE(s.ok()) << s.status();
  const UntilCond& c = s->repeat().cond;
  EXPECT_EQ(c.kind, UntilCond::Kind::kOr);
  ASSERT_EQ(c.children.size(), 2u);
  EXPECT_EQ(c.children[0].kind, UntilCond::Kind::kNonEmpty);
  EXPECT_EQ(c.children[1].kind, UntilCond::Kind::kEmpty);
  EXPECT_EQ(c.children[1].pred.name, "possible");
}

TEST(ParseStatementTest, UntilConditionAndNot) {
  Result<Statement> s = ParseStatement(
      "repeat p(X) := q(X). until !empty(p(_)) & unchanged(p(_));");
  ASSERT_TRUE(s.ok()) << s.status();
  const UntilCond& c = s->repeat().cond;
  EXPECT_EQ(c.kind, UntilCond::Kind::kAnd);
  EXPECT_EQ(c.children[0].kind, UntilCond::Kind::kNot);
}

TEST(ParseStatementTest, NestedRepeat) {
  Result<Statement> s = ParseStatement(
      "repeat repeat p(X) += q(X). until unchanged(p(_)); "
      "r(X) += p(X). until unchanged(r(_));");
  ASSERT_TRUE(s.ok()) << s.status();
  const ast::RepeatUntil& outer = s->repeat();
  ASSERT_EQ(outer.body.size(), 2u);
  EXPECT_FALSE(outer.body[0].is_assignment());
}

TEST(ParseStatementTest, MissingDotFails) {
  EXPECT_FALSE(ParseStatement("p(X) := q(X)").ok());
}

TEST(ParseStatementTest, MissingOperatorFails) {
  EXPECT_FALSE(ParseStatement("p(X) q(X).").ok());
}

// --- Rules --------------------------------------------------------------------

TEST(ParseRuleTest, TransitiveClosure) {
  Result<ast::NailRule> r = ParseRule("tc(E,X,Z):- tc(E,X,Y) & E(Y,Z).");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->head_pred.name, "tc");
  ASSERT_EQ(r->body.size(), 2u);
  EXPECT_EQ(r->body[1].pred.kind, TermKind::kVariable);
}

TEST(ParseRuleTest, ParameterizedHead) {
  // §5.1: students(ID)(Student) :- class_subject(ID,_) & attends(...).
  Result<ast::NailRule> r = ParseRule(
      "students(ID)(Student) :- class_subject(ID, _) & "
      "attends(Student, ID).");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->head_pred.kind, TermKind::kApply);
  ASSERT_EQ(r->head_args.size(), 1u);
  EXPECT_EQ(r->head_args[0].name, "Student");
}

TEST(ParseRuleTest, RejectsColonInHead) {
  EXPECT_FALSE(ParseRule("p(X:Y) :- q(X,Y).").ok());
}

// --- Goals ---------------------------------------------------------------------

TEST(ParseGoalTest, ConjunctiveGoal) {
  Result<std::vector<Subgoal>> g = ParseGoal("path(1,X) & X < 5");
  ASSERT_TRUE(g.ok()) << g.status();
  ASSERT_EQ(g->size(), 2u);
  EXPECT_EQ((*g)[0].kind, SubgoalKind::kAtom);
  EXPECT_EQ((*g)[1].kind, SubgoalKind::kComparison);
}

TEST(ParseGoalTest, TrailingDotAllowed) {
  EXPECT_TRUE(ParseGoal("p(X).").ok());
}

// --- Modules ---------------------------------------------------------------------

TEST(ParseModuleTest, MinimalModule) {
  Result<ast::Module> m = ParseModule("module tiny; end");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->name, "tiny");
  EXPECT_TRUE(m->procedures.empty());
}

TEST(ParseModuleTest, TcProcedureFromPaper) {
  // §4, verbatim structure.
  Result<ast::Module> m = ParseModule(R"(
module graph;
edb e(X,Y);
export tc_e(X:Y);
procedure tc_e (X:Y)
rels connected(X,Y);
  connected(X,Y):= in(X) & e(X,Y).
  repeat
    connected(X,Y)+= connected(X,Z) & e(Z,Y).
  until unchanged( connected(_,_));
  return(X:Y):= connected(X,Y).
end
end
)");
  ASSERT_TRUE(m.ok()) << m.status();
  ASSERT_EQ(m->procedures.size(), 1u);
  const ast::Procedure& p = m->procedures[0];
  EXPECT_EQ(p.name, "tc_e");
  EXPECT_EQ(p.bound_arity, 1u);
  EXPECT_EQ(p.free_arity, 1u);
  ASSERT_EQ(p.locals.size(), 1u);
  EXPECT_EQ(p.locals[0].name, "connected");
  EXPECT_EQ(p.locals[0].arity, 2u);
  ASSERT_EQ(p.body.size(), 3u);
  EXPECT_TRUE(p.body[0].is_assignment());
  EXPECT_FALSE(p.body[1].is_assignment());
  EXPECT_TRUE(p.body[2].is_assignment());
  EXPECT_EQ(p.body[2].assignment().head_colon, 1);
}

TEST(ParseModuleTest, ExportsImportsEdb) {
  Result<ast::Module> m = ParseModule(R"(
module example;
export select(:Key), count_all(:N);
from windows import event( :Type, Data );
from graphics import highlight( Key: ), dehighlight( Key: );
edb element(Key, Origin, P1, P2, DS ), tolerance(T);
end
)");
  ASSERT_TRUE(m.ok()) << m.status();
  ASSERT_EQ(m->exports.size(), 2u);
  EXPECT_EQ(m->exports[0].name, "select");
  EXPECT_EQ(m->exports[0].bound_arity, 0u);
  EXPECT_EQ(m->exports[0].free_arity, 1u);
  ASSERT_EQ(m->imports.size(), 3u);
  EXPECT_EQ(m->imports[0].from_module, "windows");
  EXPECT_EQ(m->imports[0].sig.bound_arity, 0u);
  EXPECT_EQ(m->imports[0].sig.free_arity, 2u);
  EXPECT_EQ(m->imports[1].sig.bound_arity, 1u);
  EXPECT_EQ(m->imports[1].sig.free_arity, 0u);
  ASSERT_EQ(m->edb.size(), 2u);
  EXPECT_EQ(m->edb[0].arity, 5u);
  EXPECT_EQ(m->edb[1].arity, 1u);
}

TEST(ParseModuleTest, NailRulesAndFacts) {
  Result<ast::Module> m = ParseModule(R"(
module kb;
edb edge(X,Y);
edge(1,2).
edge(2,3).
path(X,Y) :- edge(X,Y).
path(X,Z) :- path(X,Y) & edge(Y,Z).
end
)");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->facts.size(), 2u);
  EXPECT_EQ(m->rules.size(), 2u);
}

TEST(ParseModuleTest, NonGroundFactFails) {
  EXPECT_FALSE(ParseModule("module bad; edge(1,X). end").ok());
}

TEST(ParseModuleTest, UnterminatedModuleFails) {
  EXPECT_FALSE(ParseModule("module oops; edb p(X);").ok());
}

TEST(ParseModuleTest, ProcedureRequiresColon) {
  EXPECT_FALSE(ParseModule("module m; proc f(X) end end").ok());
}

TEST(ParseProgramTest, MultipleModules) {
  Result<ast::Program> p = ParseProgram(
      "module a; edb p(X); end module b; edb q(X); end");
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->modules.size(), 2u);
}

TEST(ParseProgramTest, EmptyInputFails) {
  EXPECT_FALSE(ParseProgram("").ok());
}

// The full Figure 1 module (cleaned of its OCR typos) must parse.
TEST(ParseModuleTest, Figure1CadModule) {
  Result<ast::Module> m = ParseModule(R"(
module example;
export select(:Key);
from windows import event( :Type, Data );
from graphics import
  highlight( Key: ), dehighlight( Key: );
edb element(Key, Origin, P1, P2, DS ),
    tolerance(T);

proc select( :Key )
rels
  possible(Key, D), try(Key), confirmed(Key);
  possible( Key, D ):=
        event( mouse, p(X,Y) ) &
        graphic_search( p(X,Y), Key, D ).
  repeat
    try(Key):=
      possible( Key, D ) &
      D = min(D) &
      It = arbitrary(Key) &
      --possible( It, D ).
    confirmed(K):=
      try(K) &
      highlight(K) &
      write( 'This one?' ) &
      event( keyboard, KeyBuffer ) &
      dehighlight( K ) &
      KeyBuffer = 'y'.
  until {confirmed(K) | empty(possible(K,D)) };
  return(:Key):= confirmed( Key ).
end

graphic_search( p(X,Y), Key, Dist ):-
  element( Key, _, p(Xmin, Ymin), _,_ ) &
  tolerance(T) &
  (X-Xmin)*(X-Xmin) + (Y-Ymin)*(Y-Ymin) < T &
  Dist = (X-Xmin)*(X-Xmin) + (Y-Ymin)*(Y-Ymin).
end
)");
  ASSERT_TRUE(m.ok()) << m.status();
  ASSERT_EQ(m->procedures.size(), 1u);
  ASSERT_EQ(m->rules.size(), 1u);
  const ast::Procedure& p = m->procedures[0];
  EXPECT_EQ(p.name, "select");
  EXPECT_EQ(p.bound_arity, 0u);
  EXPECT_EQ(p.free_arity, 1u);
  EXPECT_EQ(p.locals.size(), 3u);
  ASSERT_EQ(p.body.size(), 3u);
}

}  // namespace
}  // namespace gluenail
