#include "src/common/status.h"

#include <gtest/gtest.h>

#include "src/common/result.h"

namespace gluenail {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("unexpected ')'");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsParseError());
  EXPECT_EQ(s.message(), "unexpected ')'");
  EXPECT_EQ(s.ToString(), "parse error: unexpected ')'");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::CompileError("x").IsCompileError());
  EXPECT_TRUE(Status::RuntimeError("x").IsRuntimeError());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
}

TEST(StatusTest, CopySemantics) {
  Status a = Status::IoError("disk full");
  Status b = a;
  EXPECT_EQ(a.ToString(), b.ToString());
  b = Status::OK();
  EXPECT_TRUE(b.ok());
  EXPECT_FALSE(a.ok());
}

TEST(StatusTest, WithContextPrefixes) {
  Status s = Status::IoError("open failed").WithContext("edb.facts");
  EXPECT_TRUE(s.IsIoError());
  EXPECT_EQ(s.message(), "edb.facts: open failed");
  EXPECT_TRUE(Status::OK().WithContext("ignored").ok());
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    GLUENAIL_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsInternal());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto producer = [](bool fail) -> Result<std::string> {
    if (fail) return Status::RuntimeError("bad");
    return std::string("value");
  };
  auto consumer = [&](bool fail) -> Result<size_t> {
    std::string s;
    GLUENAIL_ASSIGN_OR_RETURN(s, producer(fail));
    return s.size();
  };
  Result<size_t> ok = consumer(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5u);
  EXPECT_TRUE(consumer(true).status().IsRuntimeError());
}

TEST(ResultTest, MoveValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  std::unique_ptr<int> p = r.MoveValue();
  EXPECT_EQ(*p, 7);
}

}  // namespace
}  // namespace gluenail
