/// Unit tests for the subgoal reorderer (§3.1) and the physical planner's
/// cost-based ordering built on top of it.

#include "src/analysis/reorder.h"

#include <gtest/gtest.h>

#include "src/parser/parser.h"
#include "src/plan/physical.h"

namespace gluenail {
namespace {

/// The statement corpus shared by the syntactic tests below and the
/// cost-order property tests: orderings from both models must be valid
/// permutations that respect barriers and binding requirements.
const char* const kCorpus[] = {
    "h(X) := a(X) & b(X, Y) & X > 3.",
    "h(X,Y) := a(X) & b(X, Y) & !bad(X).",
    "h(X) := a(X) & ++log(X) & c(X).",
    "h(M) := a(X) & M = max(X) & b(M, Y).",
    "h(Y) := big(S, X) & lookup(X, Y) & seed(S).",
    "h(X) := n(X) & X = 1.0.",
    "h(Y) := a(X) & b(Y2, Z) & Y = X + 1 & c(Y, Z).",
    "h(A,B,C) := r(A) & s(A,B) & t(B,C) & A != B & ++u(C) & v(C).",
};

class ReorderTest : public ::testing::Test {
 protected:
  ReorderTest() {
    env_.pool = &pool_;
    env_.scope = &scope_;
    env_.implicit_edb = true;
  }

  /// Parses "h := body." and reorders the body; returns the subgoals in
  /// execution order, rendered.
  std::vector<std::string> Order(std::string_view stmt) {
    Result<ast::Statement> s = ParseStatement(stmt);
    EXPECT_TRUE(s.ok()) << s.status();
    const ast::Assignment& a = s->assignment();
    Result<std::vector<size_t>> perm = ReorderBody(a.body, env_, {});
    EXPECT_TRUE(perm.ok()) << perm.status();
    std::vector<std::string> out;
    for (size_t idx : *perm) {
      out.push_back(ast::ToString(a.body[idx]));
    }
    return out;
  }

  /// Runs the physical planner's ordering (no stats registered, so
  /// estimates fall back to defaults) and returns the body indices.
  std::vector<size_t> CostOrder(std::string_view stmt,
                                PlannerOptions::CostModel model) {
    Result<ast::Statement> s = ParseStatement(stmt);
    EXPECT_TRUE(s.ok()) << s.status();
    const ast::Assignment& a = s->assignment();
    PlannerOptions opts;
    opts.cost_model = model;
    Result<std::vector<PhysicalChoice>> choices =
        PlanBodyOrder(a.body, env_, {}, opts);
    EXPECT_TRUE(choices.ok()) << choices.status();
    std::vector<size_t> out;
    for (const PhysicalChoice& c : *choices) out.push_back(c.body_index);
    return out;
  }

  /// Replays \p order, asserting every subgoal's binding requirements are
  /// met when it runs (negation/comparison safety).
  void ExpectSchedulable(const std::vector<ast::Subgoal>& body,
                         const std::vector<size_t>& order) {
    BoundSet bound;
    for (size_t idx : order) {
      Result<SubgoalInfo> info = AnalyzeSubgoal(body[idx], env_, bound);
      ASSERT_TRUE(info.ok()) << info.status();
      EXPECT_TRUE(IsSchedulable(info->required, bound))
          << "subgoal " << ast::ToString(body[idx]) << " ran unbound";
      for (const std::string& v : info->binds) bound.insert(v);
    }
  }

  TermPool pool_;
  Scope scope_;
  CompileEnv env_;
};

TEST_F(ReorderTest, FiltersScheduleAsSoonAsBound) {
  std::vector<std::string> order =
      Order("h(X) := a(X) & b(X, Y) & X > 3.");
  // X > 3 only needs X, so it runs right after a(X).
  EXPECT_EQ(order,
            (std::vector<std::string>{"a(X)", "X > 3", "b(X,Y)"}));
}

TEST_F(ReorderTest, NegationRunsEarlyOnceBound) {
  std::vector<std::string> order =
      Order("h(X,Y) := a(X) & b(X, Y) & !bad(X).");
  EXPECT_EQ(order,
            (std::vector<std::string>{"a(X)", "!bad(X)", "b(X,Y)"}));
}

TEST_F(ReorderTest, FixedSubgoalsAreBarriers) {
  // The update must stay between its neighbors even though c(X) would
  // otherwise score like a(X).
  std::vector<std::string> order =
      Order("h(X) := a(X) & ++log(X) & c(X).");
  EXPECT_EQ(order,
            (std::vector<std::string>{"a(X)", "++log(X)", "c(X)"}));
}

TEST_F(ReorderTest, AggregatorPinsItsPosition) {
  // §3.1: "subgoals cannot be moved past an aggregator".
  std::vector<std::string> order =
      Order("h(M) := a(X) & M = max(X) & b(M, Y).");
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[1], "M = max(X)");
}

TEST_F(ReorderTest, SelectiveSeedMovesFirst) {
  // The mis-ordered body of bench E8.
  std::vector<std::string> order =
      Order("h(Y) := big(S, X) & lookup(X, Y) & seed(S).");
  // seed has fewer columns, but big(S,X) with S bound becomes keyed, so
  // seed should come first.
  EXPECT_EQ(order[0], "seed(S)");
  EXPECT_EQ(order[1], "big(S,X)");
  EXPECT_EQ(order[2], "lookup(X,Y)");
}

TEST_F(ReorderTest, EqBindingDefersToMatchingBinder) {
  // X = 1.0 must not hoist above n(X): binding installs the float term,
  // whereas filtering compares numerically (the semantics guard).
  std::vector<std::string> order = Order("h(X) := n(X) & X = 1.0.");
  EXPECT_EQ(order, (std::vector<std::string>{"n(X)", "X = 1.0"}));
}

TEST_F(ReorderTest, EqComputationSchedulesWhenSourceBound) {
  std::vector<std::string> order =
      Order("h(Y) := a(X) & b(Y2, Z) & Y = X + 1 & c(Y, Z).");
  // Y = X+1 binds Y and no other subgoal binds Y, so it may run as soon
  // as X is bound — before the b/c matches.
  EXPECT_EQ(order[0], "a(X)");
  EXPECT_EQ(order[1], "Y = (X+1)");
}

TEST_F(ReorderTest, UnschedulableTailKeepsOriginalOrder) {
  // W is never bound: the reorderer leaves the broken tail as written so
  // the planner reports the error at the right subgoal.
  Result<ast::Statement> s =
      ParseStatement("h(X) := a(X) & W > 2 & b(W).");
  ASSERT_TRUE(s.ok());
  Result<std::vector<size_t>> perm =
      ReorderBody(s->assignment().body, env_, {});
  ASSERT_TRUE(perm.ok());
  EXPECT_EQ(perm->size(), 3u);
}

TEST_F(ReorderTest, ProcedureCallsScheduleLast) {
  // Procedure calls are expensive (§9); with fixedness off they may
  // reorder but should sort after plain matches.
  PredBinding proc;
  proc.cls = PredClass::kGlueProc;
  proc.bound_arity = 1;
  proc.free_arity = 1;
  proc.index = 0;
  proc.fixed = false;
  scope_.Declare("expensive", 0, 2, proc);
  std::vector<std::string> order =
      Order("h(Y) := expensive(X, Y) & a(X) & b(X).");
  EXPECT_EQ(order[2], "expensive(X,Y)");
}

TEST_F(ReorderTest, PermutationIsValid) {
  std::vector<std::string> order = Order(
      "h(A,B,C) := r(A) & s(A,B) & t(B,C) & A != B & ++u(C) & v(C).");
  EXPECT_EQ(order.size(), 6u);
  std::set<std::string> distinct(order.begin(), order.end());
  EXPECT_EQ(distinct.size(), 6u);
}

TEST_F(ReorderTest, CostOrderUnderSyntacticModelMatchesReorderBody) {
  // With cost_model = kSyntactic the physical planner must reproduce the
  // heuristic ordering exactly — it is the A/B baseline.
  for (const char* stmt : kCorpus) {
    Result<ast::Statement> s = ParseStatement(stmt);
    ASSERT_TRUE(s.ok()) << s.status();
    Result<std::vector<size_t>> syntactic =
        ReorderBody(s->assignment().body, env_, {});
    ASSERT_TRUE(syntactic.ok()) << syntactic.status();
    EXPECT_EQ(CostOrder(stmt, PlannerOptions::CostModel::kSyntactic),
              *syntactic)
        << stmt;
  }
}

TEST_F(ReorderTest, CostOrderIsValidPermutationAndSchedulable) {
  for (const char* stmt : kCorpus) {
    Result<ast::Statement> s = ParseStatement(stmt);
    ASSERT_TRUE(s.ok()) << s.status();
    const std::vector<ast::Subgoal>& body = s->assignment().body;
    std::vector<size_t> order =
        CostOrder(stmt, PlannerOptions::CostModel::kStatistics);
    ASSERT_EQ(order.size(), body.size()) << stmt;
    std::set<size_t> distinct(order.begin(), order.end());
    EXPECT_EQ(distinct.size(), body.size()) << stmt;
    ExpectSchedulable(body, order);
  }
}

TEST_F(ReorderTest, CostOrderRespectsBarriers) {
  // Barrier-delimited segments are identical in both cost models: no
  // subgoal crosses a fixed subgoal (update / aggregate) in either
  // direction.
  for (const char* stmt : kCorpus) {
    Result<ast::Statement> s = ParseStatement(stmt);
    ASSERT_TRUE(s.ok()) << s.status();
    const std::vector<ast::Subgoal>& body = s->assignment().body;
    std::vector<size_t> order =
        CostOrder(stmt, PlannerOptions::CostModel::kStatistics);
    ASSERT_EQ(order.size(), body.size()) << stmt;
    // Identify barriers by replaying the order and re-analyzing.
    BoundSet bound;
    std::vector<bool> fixed(body.size(), false);
    for (size_t idx : order) {
      Result<SubgoalInfo> info = AnalyzeSubgoal(body[idx], env_, bound);
      ASSERT_TRUE(info.ok()) << info.status();
      fixed[idx] = info->fixed;
      for (const std::string& v : info->binds) bound.insert(v);
    }
    // Position of each body index in the executed order.
    std::vector<size_t> pos(body.size(), 0);
    for (size_t p = 0; p < order.size(); ++p) pos[order[p]] = p;
    for (size_t b = 0; b < body.size(); ++b) {
      if (!fixed[b]) continue;
      for (size_t i = 0; i < body.size(); ++i) {
        if (i < b) {
          EXPECT_LT(pos[i], pos[b]) << stmt << " subgoal " << i
                                    << " crossed barrier " << b;
        } else if (i > b) {
          EXPECT_GT(pos[i], pos[b]) << stmt << " subgoal " << i
                                    << " crossed barrier " << b;
        }
      }
    }
  }
}

}  // namespace
}  // namespace gluenail
