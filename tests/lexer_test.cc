#include "src/parser/lexer.h"

#include <gtest/gtest.h>

namespace gluenail {
namespace {

std::vector<TokKind> Kinds(std::string_view src) {
  Result<std::vector<Token>> r = Lex(src);
  EXPECT_TRUE(r.ok()) << r.status();
  std::vector<TokKind> out;
  if (r.ok()) {
    for (const Token& t : *r) out.push_back(t.kind);
  }
  return out;
}

TEST(LexerTest, EmptyInput) {
  EXPECT_EQ(Kinds(""), (std::vector<TokKind>{TokKind::kEof}));
  EXPECT_EQ(Kinds("   \n\t "), (std::vector<TokKind>{TokKind::kEof}));
}

TEST(LexerTest, IdentifiersAndVariables) {
  Result<std::vector<Token>> r = Lex("edge Key _Temp _ x9_a");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 6u);
  EXPECT_EQ((*r)[0].kind, TokKind::kIdent);
  EXPECT_EQ((*r)[0].text, "edge");
  EXPECT_EQ((*r)[1].kind, TokKind::kVariable);
  EXPECT_EQ((*r)[1].text, "Key");
  EXPECT_EQ((*r)[2].kind, TokKind::kVariable);
  EXPECT_EQ((*r)[2].text, "_Temp");
  EXPECT_EQ((*r)[3].kind, TokKind::kVariable);
  EXPECT_EQ((*r)[3].text, "_");
  EXPECT_EQ((*r)[4].kind, TokKind::kIdent);
  EXPECT_EQ((*r)[4].text, "x9_a");
}

TEST(LexerTest, Numbers) {
  Result<std::vector<Token>> r = Lex("42 2.5 1e3 1.5e-2 7");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].kind, TokKind::kInt);
  EXPECT_EQ((*r)[0].int_value, 42);
  EXPECT_EQ((*r)[1].kind, TokKind::kFloat);
  EXPECT_DOUBLE_EQ((*r)[1].float_value, 2.5);
  EXPECT_EQ((*r)[2].kind, TokKind::kFloat);
  EXPECT_DOUBLE_EQ((*r)[2].float_value, 1000.0);
  EXPECT_EQ((*r)[3].kind, TokKind::kFloat);
  EXPECT_DOUBLE_EQ((*r)[3].float_value, 0.015);
  EXPECT_EQ((*r)[4].kind, TokKind::kInt);
}

TEST(LexerTest, DotAfterIntIsTerminator) {
  // "row(X)." — the final dot is a statement terminator, not a decimal
  // point; likewise "f(1)." must end with kDot.
  EXPECT_EQ(Kinds("f(1)."),
            (std::vector<TokKind>{TokKind::kIdent, TokKind::kLParen,
                                  TokKind::kInt, TokKind::kRParen,
                                  TokKind::kDot, TokKind::kEof}));
}

TEST(LexerTest, FloatThenTerminatorDot) {
  // "1.0." lexes as float 1.0 followed by kDot.
  Result<std::vector<Token>> r = Lex("1.0.");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].kind, TokKind::kFloat);
  EXPECT_EQ((*r)[1].kind, TokKind::kDot);
}

TEST(LexerTest, QuotedSymbols) {
  Result<std::vector<Token>> r = Lex("'San Francisco' 'it\\'s'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].kind, TokKind::kString);
  EXPECT_EQ((*r)[0].text, "San Francisco");
  EXPECT_EQ((*r)[1].text, "it's");
}

TEST(LexerTest, UnterminatedQuoteFails) {
  EXPECT_FALSE(Lex("'oops").ok());
}

TEST(LexerTest, CompoundOperators) {
  EXPECT_EQ(Kinds(":= += -= :- ++ -- != <= >="),
            (std::vector<TokKind>{
                TokKind::kAssign, TokKind::kPlusAssign, TokKind::kMinusAssign,
                TokKind::kRuleArrow, TokKind::kPlusPlus, TokKind::kMinusMinus,
                TokKind::kNe, TokKind::kLe, TokKind::kGe, TokKind::kEof}));
}

TEST(LexerTest, SingleCharOperators) {
  EXPECT_EQ(Kinds("( ) [ ] { } , & . ; : ! | = < > + - * /"),
            (std::vector<TokKind>{
                TokKind::kLParen, TokKind::kRParen, TokKind::kLBracket,
                TokKind::kRBracket, TokKind::kLBrace, TokKind::kRBrace,
                TokKind::kComma, TokKind::kAmp, TokKind::kDot, TokKind::kSemi,
                TokKind::kColon, TokKind::kBang, TokKind::kPipe, TokKind::kEq,
                TokKind::kLt, TokKind::kGt, TokKind::kPlus, TokKind::kMinus,
                TokKind::kStar, TokKind::kSlash, TokKind::kEof}));
}

TEST(LexerTest, CommentsAreSkipped) {
  EXPECT_EQ(Kinds("a % comment := here\nb"),
            (std::vector<TokKind>{TokKind::kIdent, TokKind::kIdent,
                                  TokKind::kEof}));
}

TEST(LexerTest, SourceLocations) {
  Result<std::vector<Token>> r = Lex("a\n  b");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].loc.line, 1);
  EXPECT_EQ((*r)[0].loc.col, 1);
  EXPECT_EQ((*r)[1].loc.line, 2);
  EXPECT_EQ((*r)[1].loc.col, 3);
}

TEST(LexerTest, AssignmentStatementTokens) {
  // The paper's first example: r(X,Y) += s(X,W) & t(f(W,X),Y).
  Result<std::vector<Token>> r = Lex("r(X,Y) += s(X,W) & t(f(W,X),Y).");
  ASSERT_TRUE(r.ok());
  // r ( X , Y ) +=
  EXPECT_EQ((*r)[5].kind, TokKind::kRParen);
  EXPECT_EQ((*r)[6].kind, TokKind::kPlusAssign);
  EXPECT_EQ(r->back().kind, TokKind::kEof);
  EXPECT_EQ((*r)[r->size() - 2].kind, TokKind::kDot);
}

TEST(LexerTest, RejectsUnknownCharacter) {
  EXPECT_FALSE(Lex("a @ b").ok());
  EXPECT_FALSE(Lex("a $ b").ok());
}

TEST(LexerTest, ExponentNotFollowedByDigitsIsNotFloat) {
  // "12e" is the int 12 followed by identifier e.
  Result<std::vector<Token>> r = Lex("12e");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].kind, TokKind::kInt);
  EXPECT_EQ((*r)[1].kind, TokKind::kIdent);
  EXPECT_EQ((*r)[1].text, "e");
}

}  // namespace
}  // namespace gluenail
