/// Robustness tests: malformed input must produce Status errors with
/// locations, never crashes; limits are enforced; recovery works.

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "src/api/engine.h"
#include "src/parser/parser.h"

namespace gluenail {
namespace {

TEST(RobustnessTest, ParserSurvivesRandomGarbage) {
  std::mt19937 rng(123);
  const std::string alphabet =
      "abcXYZ019 ()[]{},.&;:!|=<>+-*/_'\"\\\n\t%";
  std::uniform_int_distribution<size_t> pick(0, alphabet.size() - 1);
  std::uniform_int_distribution<int> len(0, 200);
  for (int trial = 0; trial < 500; ++trial) {
    std::string src;
    int n = len(rng);
    for (int i = 0; i < n; ++i) src += alphabet[pick(rng)];
    // Must not crash; almost always a parse error.
    Result<ast::Program> p = ParseProgram(src);
    if (!p.ok()) {
      EXPECT_TRUE(p.status().IsParseError()) << p.status();
    }
  }
}

TEST(RobustnessTest, ParserSurvivesTruncations) {
  const std::string whole = R"(
module graph;
edb e(X,Y);
export tc_e(X:Y);
procedure tc_e (X:Y)
rels connected(X,Y);
  connected(X,Y):= in(X) & e(X,Y).
  repeat
    connected(X,Y)+= connected(X,Z) & e(Z,Y).
  until unchanged( connected(_,_));
  return(X:Y):= connected(X,Y).
end
end
)";
  for (size_t cut = 0; cut < whole.size(); cut += 3) {
    Result<ast::Program> p = ParseProgram(whole.substr(0, cut));
    // Either parses (early cuts hit whitespace-only prefixes -> error
    // anyway) or errors; never crashes.
    if (!p.ok()) {
      EXPECT_FALSE(p.status().message().empty());
    }
  }
}

TEST(RobustnessTest, DeepExpressionNesting) {
  std::string expr = "X";
  for (int i = 0; i < 2000; ++i) expr = "(" + expr + "+1)";
  std::string stmt = "p(Y) := n(X) & Y = " + expr + ".";
  Engine engine;
  ASSERT_TRUE(engine.AddFact("n(0).").ok());
  Status s = engine.ExecuteStatement(stmt);
  EXPECT_TRUE(s.ok()) << s;
  Result<Engine::QueryResult> r = engine.Query("p(Y)");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(engine.terms().IntValue(r->rows[0][0]), 2000);
}

TEST(RobustnessTest, RecursionDepthGuard) {
  EngineOptions opts;
  opts.exec.max_call_depth = 16;
  Engine engine(opts);
  ASSERT_TRUE(engine.LoadProgram(R"(
module m;
export down(N:M);
proc down(N:M)
rels step(K,R);
  step(K, R) := in(N) & K = N - 1 & down(K, R).
  return(N:M) := in(N) & step(_, M).
end
end
)").ok());
  Status s = engine.Call("down", {{*engine.InternTerm("100")}}).status();
  ASSERT_TRUE(s.IsRuntimeError()) << s;
  EXPECT_NE(s.message().find("depth"), std::string::npos);
}

TEST(RobustnessTest, ErrorsCarrySourceLocations) {
  Engine engine;
  Status s = engine.ExecuteStatement("p(X, Y) := q(X).");
  ASSERT_TRUE(s.IsCompileError());
  EXPECT_NE(s.message().find("line 1"), std::string::npos) << s;
  EXPECT_NE(s.message().find("Y"), std::string::npos) << s;
}

TEST(RobustnessTest, EngineUsableAfterErrors) {
  Engine engine;
  EXPECT_FALSE(engine.ExecuteStatement("p( := broken").ok());
  EXPECT_FALSE(engine.ExecuteStatement("p(X) := !q(X).").ok());
  ASSERT_TRUE(engine.AddFact("n(0).").ok());
  EXPECT_FALSE(engine.ExecuteStatement("p(Y) := n(X) & Y = 1/X.").ok());
  // And then everything still works.
  ASSERT_TRUE(engine.ExecuteStatement("ok(X) := n(X).").ok());
  Result<Engine::QueryResult> r = engine.Query("ok(X)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 1u);
}

TEST(RobustnessTest, ReadAtEofIsIoError) {
  std::istringstream empty("");
  Engine engine;
  engine.SetIo(nullptr, &empty);
  ASSERT_TRUE(engine.AddFact("go(1).").ok());
  Status s = engine.ExecuteStatement("got(T) := go(_) & read(T).");
  EXPECT_TRUE(s.IsIoError()) << s;
}

TEST(RobustnessTest, PersistenceSkipsCommentsAndBlankLines) {
  TermPool pool;
  Database db(&pool);
  std::istringstream in(
      "% header comment\n"
      "\n"
      "# hash comment\n"
      "   \t \n"
      "p(1).\n");
  ASSERT_TRUE(LoadDatabase(&db, in).ok());
  EXPECT_EQ(db.Find(pool.MakeSymbol("p"), 1)->size(), 1u);
}

TEST(RobustnessTest, PersistenceReportsLineNumbers) {
  TermPool pool;
  Database db(&pool);
  std::istringstream in("p(1).\nq(broken\n");
  Status s = LoadDatabase(&db, in);
  ASSERT_TRUE(s.IsParseError());
  EXPECT_NE(s.message().find("line 2"), std::string::npos) << s;
}

TEST(RobustnessTest, LongChainStatementsCompile) {
  // 64-subgoal body.
  std::string stmt = "out(V0, V64) := ";
  for (int i = 0; i < 64; ++i) {
    if (i != 0) stmt += " & ";
    stmt += StrCat("hop(V", i, ", V", i + 1, ")");
  }
  stmt += ".";
  Engine engine;
  ASSERT_TRUE(engine.AddFact("hop(0,0).").ok());
  Status s = engine.ExecuteStatement(stmt);
  EXPECT_TRUE(s.ok()) << s;
}

TEST(RobustnessTest, ThirtyTwoColumnRelationLimit) {
  // Columns beyond 32 would overflow the mask; the planner treats such
  // columns as unkeyed but must stay correct.
  std::string fact = "wide(";
  std::string pattern = "w(";
  for (int i = 0; i < 20; ++i) {
    if (i != 0) {
      fact += ",";
      pattern += ",";
    }
    fact += StrCat(i);
    pattern += StrCat("X", i);
  }
  fact += ").";
  pattern += ")";
  Engine engine;
  ASSERT_TRUE(engine.AddFact(fact).ok());
  Result<Engine::QueryResult> r =
      engine.Query(StrCat("wide(", pattern.substr(2), ""));
  // (Just ensure querying a 20-column relation works.)
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->rows.size(), 1u);
}

}  // namespace
}  // namespace gluenail
