/// Reproduction of Figure 1 (experiment F1 in DESIGN.md): the micro-CAD
/// `select` module. The paper's `windows` and `graphics` modules are
/// foreign code; here they are host procedures over a scripted event
/// queue, exercising the same code path (fixed I/O subgoals, pipeline
/// breaks, foreign calls).

#include <gtest/gtest.h>

#include <deque>

#include "src/api/engine.h"

namespace gluenail {
namespace {

// Cleaned of the OCR noise in the paper's listing. One structural change:
// the paper passes the mouse point into graphic_search as a bound
// argument, which presumes top-down (magic-style) binding propagation;
// this bottom-up engine instead has select record the point in a `click`
// EDB relation that the rule reads — the division of labor the paper
// itself prescribes (Glue for state, NAIL! for the query).
constexpr std::string_view kCadModule = R"(
module example;
export select(:Key);
from windows import event( :Type, Data );
from graphics import
  highlight( Key: ), dehighlight( Key: );
edb element(Key, P1, DS),
    tolerance(T),
    click(X, Y);

proc select( :Key )
rels
  possible(Key, D), try(Key), confirmed(Key);
  click(X,Y) := event( mouse, p(X,Y) ).
  possible( Key, D ):= graphic_search( Key, D ).
  repeat
    try(Key):=
      possible( Key, D ) &
      D = min(D) &
      It = arbitrary(Key) &
      Key = It &
      --possible( It, D ).
    confirmed(K):=
      try(K) &
      highlight(K) &
      write( 'This one?' ) &
      event( keyboard, KeyBuffer ) &
      dehighlight( K ) &
      KeyBuffer = 'y'.
  until {confirmed(K) | empty(possible(K,D)) };
  return(:Key):= confirmed( Key ).
end

graphic_search( Key, Dist ):-
  click(X,Y) &
  element( Key, p(Xmin, Ymin), _ ) &
  tolerance(T) &
  (X-Xmin)*(X-Xmin) + (Y-Ymin)*(Y-Ymin) < T &
  Dist = (X-Xmin)*(X-Xmin) + (Y-Ymin)*(Y-Ymin).
end
)";

/// A scripted windowing system standing in for the paper's foreign
/// `windows`/`graphics` modules.
class FakeWindowSystem {
 public:
  void PushMouse(int64_t x, int64_t y) {
    events_.push_back(Event{"mouse", x, y, ""});
  }
  void PushKey(std::string key) {
    events_.push_back(Event{"keyboard", 0, 0, std::move(key)});
  }

  const std::vector<std::string>& highlighted() const { return highlighted_; }
  const std::vector<std::string>& dehighlighted() const {
    return dehighlighted_;
  }

  void Register(Engine* engine) {
    HostProcedure event;
    event.name = "event";
    event.bound_arity = 0;
    event.free_arity = 2;
    event.fn = [this](TermPool* pool, const Relation& input,
                      Relation* output) -> Status {
      if (input.empty()) return Status::OK();
      if (events_.empty()) {
        return Status::RuntimeError("event queue exhausted");
      }
      Event e = events_.front();
      events_.pop_front();
      TermId type = pool->MakeSymbol(e.type);
      TermId data;
      if (e.type == "mouse") {
        std::vector<TermId> xy{pool->MakeInt(e.x), pool->MakeInt(e.y)};
        data = pool->MakeCompound("p", xy);
      } else {
        data = pool->MakeSymbol(e.key);
      }
      output->Insert(Tuple{type, data});
      return Status::OK();
    };
    ASSERT_TRUE(engine->RegisterHostProcedure(std::move(event)).ok());

    HostProcedure highlight;
    highlight.name = "highlight";
    highlight.bound_arity = 1;
    highlight.free_arity = 0;
    highlight.fn = [this](TermPool* pool, const Relation& input,
                          Relation* output) -> Status {
      for (RowView t : input) {
        highlighted_.push_back(pool->ToString(t[0]));
        output->Insert(t);
      }
      return Status::OK();
    };
    ASSERT_TRUE(engine->RegisterHostProcedure(std::move(highlight)).ok());

    HostProcedure dehighlight = highlight;
    dehighlight.name = "dehighlight";
    dehighlight.fn = [this](TermPool* pool, const Relation& input,
                            Relation* output) -> Status {
      for (RowView t : input) {
        dehighlighted_.push_back(pool->ToString(t[0]));
        output->Insert(t);
      }
      return Status::OK();
    };
    ASSERT_TRUE(engine->RegisterHostProcedure(std::move(dehighlight)).ok());
  }

 private:
  struct Event {
    std::string type;
    int64_t x, y;
    std::string key;
  };
  std::deque<Event> events_;
  std::vector<std::string> highlighted_;
  std::vector<std::string> dehighlighted_;
};

class CadExampleTest : public ::testing::TestWithParam<ExecOptions::Strategy> {
 protected:
  void SetUp() override {
    EngineOptions opts;
    opts.exec.strategy = GetParam();
    engine_ = std::make_unique<Engine>(opts);
    windows_.Register(engine_.get());
    out_ = std::make_unique<std::ostringstream>();
    engine_->SetIo(out_.get(), nullptr);
  }

  void LoadCad() {
    ASSERT_TRUE(engine_->LoadProgram(kCadModule).ok());
    // A small drawing: three elements, two near the click point (5,5).
    ASSERT_TRUE(engine_->AddFact("element(line1, p(5,6), solid).").ok());
    ASSERT_TRUE(engine_->AddFact("element(line2, p(7,5), dashed).").ok());
    ASSERT_TRUE(engine_->AddFact("element(blob, p(90,90), solid).").ok());
    ASSERT_TRUE(engine_->AddFact("tolerance(30).").ok());
  }

  std::string CallSelect() {
    Result<std::vector<Tuple>> r = engine_->Call("select", {Tuple{}});
    EXPECT_TRUE(r.ok()) << r.status();
    if (!r.ok() || r->empty()) return "";
    return engine_->terms().ToString((*r)[0][0]);
  }

  FakeWindowSystem windows_;
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<std::ostringstream> out_;
};

TEST_P(CadExampleTest, UserConfirmsFirstCandidate) {
  LoadCad();
  windows_.PushMouse(5, 5);
  windows_.PushKey("y");
  // line1 is nearest (distance 1 < line2's distance 4): offered first.
  EXPECT_EQ(CallSelect(), "line1");
  EXPECT_EQ(windows_.highlighted(),
            (std::vector<std::string>{"line1"}));
  EXPECT_EQ(windows_.dehighlighted(),
            (std::vector<std::string>{"line1"}));
  EXPECT_EQ(out_->str(), "This one?");
}

TEST_P(CadExampleTest, UserRejectsFirstAcceptsSecond) {
  LoadCad();
  windows_.PushMouse(5, 5);
  windows_.PushKey("n");
  windows_.PushKey("y");
  // Candidates offered in increasing distance order: line1 then line2.
  EXPECT_EQ(CallSelect(), "line2");
  EXPECT_EQ(windows_.highlighted(),
            (std::vector<std::string>{"line1", "line2"}));
}

TEST_P(CadExampleTest, UserRejectsEverything) {
  LoadCad();
  windows_.PushMouse(5, 5);
  windows_.PushKey("n");
  windows_.PushKey("n");
  // Both candidates rejected: select returns no key.
  Result<std::vector<Tuple>> r = engine_->Call("select", {Tuple{}});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->empty());
}

TEST_P(CadExampleTest, ClickFarFromEverything) {
  LoadCad();
  windows_.PushMouse(50, 50);
  Result<std::vector<Tuple>> r = engine_->Call("select", {Tuple{}});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->empty());
  // Nothing was ever highlighted or asked about.
  EXPECT_TRUE(windows_.highlighted().empty());
  EXPECT_EQ(out_->str(), "");
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, CadExampleTest,
    ::testing::Values(ExecOptions::Strategy::kMaterialized,
                      ExecOptions::Strategy::kPipelined),
    [](const ::testing::TestParamInfo<ExecOptions::Strategy>& info) {
      return info.param == ExecOptions::Strategy::kMaterialized
                 ? "Materialized"
                 : "Pipelined";
    });

}  // namespace
}  // namespace gluenail
