/// HiLog higher-order programming tests (paper §5): set-valued attributes
/// holding predicate names, dynamic dereferencing with bound and unbound
/// name variables, parameterized EDB families, and dynamic heads.

#include <gtest/gtest.h>

#include "src/api/engine.h"

namespace gluenail {
namespace {

class HiLogTest : public ::testing::TestWithParam<ExecOptions::Strategy> {
 protected:
  HiLogTest() {
    EngineOptions opts;
    opts.exec.strategy = GetParam();
    engine_ = std::make_unique<Engine>(opts);
  }

  void Fact(std::string_view f) {
    Status s = engine_->AddFact(f);
    ASSERT_TRUE(s.ok()) << s;
  }

  std::string Ask(std::string_view goal) {
    Result<Engine::QueryResult> r = engine_->Query(goal);
    EXPECT_TRUE(r.ok()) << goal << ": " << r.status();
    if (!r.ok()) return "<error>";
    std::string out;
    for (size_t i = 0; i < r->rows.size(); ++i) {
      if (i != 0) out += ";";
      for (size_t j = 0; j < r->rows[i].size(); ++j) {
        if (j != 0) out += ",";
        out += engine_->terms().ToString(r->rows[i][j]);
      }
    }
    return out;
  }

  std::unique_ptr<Engine> engine_;
};

TEST_P(HiLogTest, DeptEmployeesFromPaper) {
  // §5.1: "dept_employees( toy, E_set ) & E_set( Emp_name )".
  Fact("dept_employees(toy, toy_staff).");
  Fact("dept_employees(tools, tool_staff).");
  Fact("toy_staff(alice).");
  Fact("toy_staff(bob).");
  Fact("tool_staff(carol).");
  EXPECT_EQ(Ask("dept_employees(toy, E_set) & E_set(Emp)"),
            "toy_staff,alice;toy_staff,bob");
}

TEST_P(HiLogTest, SetNameEqualityIsTermEquality) {
  // §5.1: same name => same set; no member comparison needed.
  Fact("a(team1, s).");
  Fact("b(team2, s).");
  ASSERT_TRUE(engine_->ExecuteStatement(
                  "same_set(X, Y) := a(X, S) & b(Y, S).")
                  .ok());
  EXPECT_EQ(Ask("same_set(X,Y)"), "team1,team2");
}

TEST_P(HiLogTest, UnboundPredicateVariableEnumerates) {
  // E unbound: ranges over every predicate name of matching arity.
  Fact("red(apple).");
  Fact("red(rose).");
  Fact("blue(sky).");
  EXPECT_EQ(Ask("C(apple)"), "red");
  EXPECT_EQ(Ask("C(X) & X = sky"), "blue,sky");
}

TEST_P(HiLogTest, ParameterizedEdbFamilies) {
  Fact("students(cs99)(wilson).");
  Fact("students(cs99)(green).");
  Fact("students(cs101)(jones).");
  // Ground instance lookup.
  EXPECT_EQ(Ask("students(cs99)(S)"), "green;wilson");
  // Family iteration with an unbound parameter.
  EXPECT_EQ(Ask("students(C)(jones)"), "cs101");
}

TEST_P(HiLogTest, DynamicHeadWritesNamedRelation) {
  // Meta-programming: the written relation's name is computed.
  Fact("route(alice, inbox_alice).");
  Fact("route(bob, inbox_bob).");
  Fact("message(alice, hi).");
  Fact("message(bob, yo).");
  ASSERT_TRUE(engine_->ExecuteStatement(
                  "Box(Msg) += message(Who, Msg) & route(Who, Box).")
                  .ok());
  EXPECT_EQ(Ask("inbox_alice(M)"), "hi");
  EXPECT_EQ(Ask("inbox_bob(M)"), "yo");
}

TEST_P(HiLogTest, DynamicUpdateSubgoal) {
  Fact("queue_of(a, qa).");
  Fact("qa(job1).");
  ASSERT_TRUE(engine_->ExecuteStatement(
                  "drained(J) += queue_of(a, Q) & Q(J) & --Q(J).")
                  .ok());
  EXPECT_EQ(Ask("drained(J)"), "job1");
  EXPECT_EQ(Ask("qa(J)"), "");
}

TEST_P(HiLogTest, CompoundNameBuiltFromVariables) {
  Fact("students(cs99)(wilson).");
  Fact("course(cs99).");
  // Name pattern students(C) with C bound: direct lookup per record.
  EXPECT_EQ(Ask("course(C) & students(C)(S)"), "cs99,wilson");
}

TEST_P(HiLogTest, NegatedDynamicWithBoundName) {
  Fact("set_of(x, sx).");
  Fact("sx(1).");
  Fact("candidate(1).");
  Fact("candidate(2).");
  ASSERT_TRUE(engine_->ExecuteStatement(
                  "missing(V) := candidate(V) & set_of(x, S) & !S(V).")
                  .ok());
  EXPECT_EQ(Ask("missing(V)"), "2");
}

TEST_P(HiLogTest, EnumerationSkipsInternalRelations) {
  // NAIL! storage relations ($nail/...) must never leak into HiLog
  // enumeration.
  ASSERT_TRUE(engine_->LoadProgram(R"(
module kb;
edb edge(X,Y);
path(X,Y) :- edge(X,Y).
path(X,Z) :- path(X,Y) & edge(Y,Z).
edge(1,2).
end
)").ok());
  // P ranges over binary predicates: edge (EDB) and path (published IDB),
  // but not $nail$... storage.
  Result<Engine::QueryResult> r = engine_->Query("P(1,2)");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(engine_->terms().ToString(r->rows[0][0]), "edge");
  EXPECT_EQ(engine_->terms().ToString(r->rows[1][0]), "path");
}

TEST_P(HiLogTest, CurriedDataTermsRoundTrip) {
  Fact("config(limits(cpu)(high), 99).");
  EXPECT_EQ(Ask("config(limits(cpu)(L), N)"), "high,99");
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, HiLogTest,
    ::testing::Values(ExecOptions::Strategy::kMaterialized,
                      ExecOptions::Strategy::kPipelined),
    [](const ::testing::TestParamInfo<ExecOptions::Strategy>& info) {
      return info.param == ExecOptions::Strategy::kMaterialized
                 ? "Materialized"
                 : "Pipelined";
    });

}  // namespace
}  // namespace gluenail
