/// End-to-end tests for Glue assignment statements (paper §3), executed
/// ad-hoc through the Engine.

#include <gtest/gtest.h>

#include "src/api/engine.h"

namespace gluenail {
namespace {

class GlueStatementsTest : public ::testing::TestWithParam<
                               ExecOptions::Strategy> {
 protected:
  GlueStatementsTest() {
    EngineOptions opts;
    opts.exec.strategy = GetParam();
    engine_ = std::make_unique<Engine>(opts);
  }

  void Fact(std::string_view f) {
    Status s = engine_->AddFact(f);
    ASSERT_TRUE(s.ok()) << s;
  }

  void Exec(std::string_view stmt) {
    Status s = engine_->ExecuteStatement(stmt);
    ASSERT_TRUE(s.ok()) << stmt << ": " << s;
  }

  /// Renders query answers as "a,b;c,d" in canonical order.
  std::string Ask(std::string_view goal) {
    Result<Engine::QueryResult> r = engine_->Query(goal);
    EXPECT_TRUE(r.ok()) << goal << ": " << r.status();
    if (!r.ok()) return "<error>";
    std::string out;
    for (size_t i = 0; i < r->rows.size(); ++i) {
      if (i != 0) out += ";";
      for (size_t j = 0; j < r->rows[i].size(); ++j) {
        if (j != 0) out += ",";
        out += engine_->terms().ToString(r->rows[i][j]);
      }
    }
    return out;
  }

  std::unique_ptr<Engine> engine_;
};

TEST_P(GlueStatementsTest, PaperInsertionExample) {
  // §3.1: r(X,Y) += s(X,W) & t(f(W,X),Y).
  Fact("s(1,10).");
  Fact("s(2,20).");
  Fact("t(f(10,1), a).");
  Fact("t(f(20,2), b).");
  Fact("t(f(99,9), c).");
  Exec("r(X,Y) += s(X,W) & t(f(W,X),Y).");
  EXPECT_EQ(Ask("r(X,Y)"), "1,a;2,b");
}

TEST_P(GlueStatementsTest, ClearingAssignmentOverwrites) {
  Fact("p(old).");
  Fact("q(new1).");
  Fact("q(new2).");
  Exec("p(X) := q(X).");
  EXPECT_EQ(Ask("p(X)"), "new1;new2");
}

TEST_P(GlueStatementsTest, ClearingAssignmentWithEmptyBodyClears) {
  Fact("p(a).");
  Exec("p(X) := q(X).");  // q is empty
  EXPECT_EQ(Ask("p(X)"), "");
}

TEST_P(GlueStatementsTest, DeletionAssignment) {
  Fact("p(1).");
  Fact("p(2).");
  Fact("p(3).");
  Fact("drop(2).");
  Exec("p(X) -= drop(X).");
  EXPECT_EQ(Ask("p(X)"), "1;3");
}

TEST_P(GlueStatementsTest, ModifyAssignmentUpdatesByKey) {
  // §3.1: "+=[Z] ... analogous to UPDATE in SQL".
  Fact("salary(smith, 100).");
  Fact("salary(jones, 200).");
  Fact("raise(smith, 150).");
  Exec("salary(E, S) +=[E] raise(E, S).");
  EXPECT_EQ(Ask("salary(E,S)"), "jones,200;smith,150");
}

TEST_P(GlueStatementsTest, IdentityMatrixExample) {
  // §3.1 verbatim (N=3).
  Fact("row(1).");
  Fact("row(2).");
  Fact("row(3).");
  Exec("matrix(X,X, 1.0):= row(X).");
  Exec("matrix(X,Y, 0.0)+= row(X) & row(Y) & X != Y.");
  EXPECT_EQ(Ask("matrix(X,Y,1.0)"), "1,1;2,2;3,3");
  Result<Engine::QueryResult> all = engine_->Query("matrix(X,Y,V)");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->rows.size(), 9u);
}

TEST_P(GlueStatementsTest, MaxAggregate) {
  // §3.3: max_temp example.
  Fact("temperature(10).");
  Fact("temperature(35).");
  Exec("max_temp( MaxT ):= temperature( T ) & MaxT = max(T).");
  EXPECT_EQ(Ask("max_temp(T)"), "35");
}

TEST_P(GlueStatementsTest, ColdestCityJoinForm) {
  // §3.3: the sup_1/sup_2/sup_3 walkthrough.
  Fact("daily_temp('San Francisco', 12).");
  Fact("daily_temp('Madang', 36).");
  Fact("daily_temp('Copenhagen', -2).");
  Exec(
      "coldest_city( Name ):= daily_temp( Name, T ) & MinT = min(T) & "
      "T = MinT.");
  EXPECT_EQ(Ask("coldest_city(N)"), "'Copenhagen'");
}

TEST_P(GlueStatementsTest, ColdestCityCombinedForm) {
  // §3.3: "T = min(T)" combining aggregation and restriction.
  Fact("daily_temp(sf, 12).");
  Fact("daily_temp(madang, 36).");
  Fact("daily_temp(copenhagen, -2).");
  Fact("daily_temp(oslo, -2).");  // tie: both returned
  Exec("coldest_cities( Name ):= daily_temp( Name, T ) & T = min(T).");
  EXPECT_EQ(Ask("coldest_cities(N)"), "copenhagen;oslo");
}

TEST_P(GlueStatementsTest, MeanSeesSupplementaryDuplicates) {
  // §3.3: identical temperature readings at different stations must both
  // count — the aggregate runs over the supplementary relation, not a
  // projection.
  Fact("reading(station1, 10).");
  Fact("reading(station2, 10).");
  Fact("reading(station3, 40).");
  Exec("avg_temp(A) := reading(S, T) & A = mean(T).");
  EXPECT_EQ(Ask("avg_temp(A)"), "20.0");
}

TEST_P(GlueStatementsTest, WildcardColumnsAreProjectedBeforeAggregation) {
  // §3.2: sup_i ranges over the *variables* of the first i subgoals; a
  // wildcard column contributes nothing, so tuples differing only there
  // collapse — and being a relation, sup has no duplicates. count sees 2.
  Fact("m(a, 1).");
  Fact("m(b, 1).");
  Fact("m(c, 2).");
  Exec("distinct_vals(C) := m(_, V) & C = count(V).");
  EXPECT_EQ(Ask("distinct_vals(C)"), "2");
}

TEST_P(GlueStatementsTest, AggregateCorrectEvenWithDedupDisabled) {
  // dedup_at_breaks=false is a §9 performance ablation; aggregates must
  // still see set semantics.
  EngineOptions opts;
  opts.exec.strategy = GetParam();
  opts.exec.dedup_at_breaks = false;
  Engine engine(opts);
  ASSERT_TRUE(engine.AddFact("m(a, 1).").ok());
  ASSERT_TRUE(engine.AddFact("m(b, 1).").ok());
  ASSERT_TRUE(engine.AddFact("m(c, 2).").ok());
  ASSERT_TRUE(
      engine.ExecuteStatement("distinct_vals(C) := m(_, V) & C = count(V).")
          .ok());
  Result<Engine::QueryResult> r = engine.Query("distinct_vals(C)");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(engine.terms().IntValue(r->rows[0][0]), 2);
}

TEST_P(GlueStatementsTest, CountSumProduct) {
  Fact("n(2).");
  Fact("n(3).");
  Fact("n(4).");
  Exec("stats(C, S, P) := n(X) & C = count(X) & S = sum(X) & P = "
       "product(X).");
  EXPECT_EQ(Ask("stats(C,S,P)"), "3,9,24");
}

TEST_P(GlueStatementsTest, StdDevAndArbitrary) {
  Fact("v(2).");
  Fact("v(4).");
  Exec("sd(S) := v(X) & S = std_dev(X).");
  EXPECT_EQ(Ask("sd(S)"), "1.0");
  // arbitrary picks deterministically (smallest term).
  Exec("pick(P) := v(X) & P = arbitrary(X).");
  EXPECT_EQ(Ask("pick(P)"), "2");
}

TEST_P(GlueStatementsTest, GroupByCourseAverage) {
  // §3.3.1 verbatim.
  Fact("course_student_grade(cs99, wilson, 80).");
  Fact("course_student_grade(cs99, green, 90).");
  Fact("course_student_grade(cs101, jones, 60).");
  Exec(
      "course_average( C, Average ):= course_student_grade(C,S,G) & "
      "group_by(C) & Average = mean(G).");
  EXPECT_EQ(Ask("course_average(C,A)"), "cs101,60.0;cs99,85.0");
}

TEST_P(GlueStatementsTest, CascadingGroupBy) {
  // §3.3.1: "Group_by statements cascade".
  Fact("sale(east, a, 1).");
  Fact("sale(east, a, 2).");
  Fact("sale(east, b, 10).");
  Fact("sale(west, a, 100).");
  Exec(
      "per_region_product(R, P, S) := sale(R, P, V) & group_by(R) & "
      "group_by(P) & S = sum(V).");
  EXPECT_EQ(Ask("per_region_product(R,P,S)"),
            "east,a,3;east,b,10;west,a,100");
}

TEST_P(GlueStatementsTest, GroupedMinThenFilter) {
  // Per-group aggregate then join within the group.
  Fact("price(apple, storeA, 3).");
  Fact("price(apple, storeB, 2).");
  Fact("price(pear, storeA, 5).");
  Fact("price(pear, storeB, 7).");
  Exec("cheapest(F, S) := price(F, S, P) & group_by(F) & P = min(P).");
  EXPECT_EQ(Ask("cheapest(F,S)"), "apple,storeB;pear,storeA");
}

TEST_P(GlueStatementsTest, NegatedSubgoal) {
  Fact("all(1).");
  Fact("all(2).");
  Fact("all(3).");
  Fact("bad(2).");
  Exec("good(X) := all(X) & !bad(X).");
  EXPECT_EQ(Ask("good(X)"), "1;3");
}

TEST_P(GlueStatementsTest, NegationOnMissingRelationPasses) {
  Fact("all(1).");
  Exec("good(X) := all(X) & !never_mentioned(X).");
  EXPECT_EQ(Ask("good(X)"), "1");
}

TEST_P(GlueStatementsTest, ArithmeticInComparisonAndHead) {
  Fact("base(3).");
  Fact("base(5).");
  Exec("doubled(X, Y) := base(X) & Y = X * 2.");
  EXPECT_EQ(Ask("doubled(X,Y)"), "3,6;5,10");
  Exec("shifted(X + 100) := base(X).");
  EXPECT_EQ(Ask("shifted(S)"), "103;105");
}

TEST_P(GlueStatementsTest, EuclideanDistanceFilter) {
  // The Figure 1 graphic_search arithmetic shape.
  Fact("element(e1, 0, 0).");
  Fact("element(e2, 3, 4).");
  Fact("element(e3, 10, 10).");
  Exec(
      "near(K) := element(K, Xmin, Ymin) & "
      "(5-Xmin)*(5-Xmin) + (5-Ymin)*(5-Ymin) < 30.");
  EXPECT_EQ(Ask("near(K)"), "e2");
}

TEST_P(GlueStatementsTest, StringBuiltins) {
  Fact("person(ada).");
  Exec("greeting(G) := person(P) & G = concat('hello ', P).");
  EXPECT_EQ(Ask("greeting(G)"), "'hello ada'");
  Exec("len(L) := person(P) & L = length(P).");
  EXPECT_EQ(Ask("len(L)"), "3");
  Exec("prefix(S) := person(P) & S = substring(P, 0, 2).");
  EXPECT_EQ(Ask("prefix(S)"), "ad");
}

TEST_P(GlueStatementsTest, BodyUpdatesExecutePerTuple) {
  Fact("queue(job1).");
  Fact("queue(job2).");
  Exec("done(J) += queue(J) & --queue(J) & ++log(J).");
  EXPECT_EQ(Ask("done(J)"), "job1;job2");
  EXPECT_EQ(Ask("queue(J)"), "");
  EXPECT_EQ(Ask("log(J)"), "job1;job2");
}

TEST_P(GlueStatementsTest, UpdateVisibleToLaterSubgoals) {
  // Supplementary semantics: the update happens for ALL sup tuples before
  // the next subgoal is evaluated (the §3.2 execution order).
  Fact("item(a).");
  Exec("out(X) := item(X) & ++extra(marker) & extra(Y).");
  EXPECT_EQ(Ask("out(X)"), "a");
}

TEST_P(GlueStatementsTest, CompoundTermsAsData) {
  Fact("shape(box(2,3)).");
  Fact("shape(circle(5)).");
  Exec("area_box(W*H) := shape(box(W,H)).");
  EXPECT_EQ(Ask("area_box(A)"), "6");
}

TEST_P(GlueStatementsTest, EmptySupStopsStatement) {
  // §3.2: "Execution of an assignment statement stops whenever a
  // supplementary relation is empty" — the aggregate never runs, so no
  // empty-group error escapes.
  Exec("never(M) += no_tuples(X) & M = max(X).");
  EXPECT_EQ(Ask("never(M)"), "");
}

TEST_P(GlueStatementsTest, ComparisonBindsEitherSide) {
  Fact("n(4).");
  Exec("a(Y) := n(X) & Y = X + 1.");
  Exec("b(Y) := n(X) & X + 1 = Y.");
  EXPECT_EQ(Ask("a(Y)"), "5");
  EXPECT_EQ(Ask("b(Y)"), "5");
}

TEST_P(GlueStatementsTest, NumericEqualityAcrossIntFloat) {
  Fact("n(1).");
  Exec("ok(X) := n(X) & X = 1.0.");
  EXPECT_EQ(Ask("ok(X)"), "1");
}

TEST_P(GlueStatementsTest, ModOperator) {
  Fact("n(10).");
  Fact("n(11).");
  Exec("even(X) := n(X) & X mod 2 = 0.");
  EXPECT_EQ(Ask("even(X)"), "10");
}

TEST_P(GlueStatementsTest, UnboundHeadVariableIsCompileError) {
  Status s = engine_->ExecuteStatement("p(X, Y) := q(X).");
  EXPECT_TRUE(s.IsCompileError()) << s;
}

TEST_P(GlueStatementsTest, UnboundNegationIsCompileError) {
  Status s = engine_->ExecuteStatement("p(X) := !q(X).");
  EXPECT_TRUE(s.IsCompileError()) << s;
}

TEST_P(GlueStatementsTest, AggregateOnLeftIsCompileError) {
  Status s = engine_->ExecuteStatement("p(M) := q(X) & max(X) = M.");
  EXPECT_TRUE(s.IsCompileError()) << s;
}

TEST_P(GlueStatementsTest, DivisionByZeroIsRuntimeError) {
  ASSERT_TRUE(engine_->AddFact("n(0).").ok());
  Status s = engine_->ExecuteStatement("p(Y) := n(X) & Y = 1 / X.");
  EXPECT_TRUE(s.IsRuntimeError()) << s;
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, GlueStatementsTest,
    ::testing::Values(ExecOptions::Strategy::kMaterialized,
                      ExecOptions::Strategy::kPipelined),
    [](const ::testing::TestParamInfo<ExecOptions::Strategy>& info) {
      return info.param == ExecOptions::Strategy::kMaterialized
                 ? "Materialized"
                 : "Pipelined";
    });

}  // namespace
}  // namespace gluenail
