/// Unit tests for the predefined I/O procedures (runtime/io.h) at the
/// call-convention level, plus stream plumbing.

#include "src/runtime/io.h"

#include <gtest/gtest.h>

#include <sstream>

namespace gluenail {
namespace {

class IoBuiltinsTest : public ::testing::Test {
 protected:
  IoBuiltinsTest() : input_("call_in", 1), out_rel_("call_out", 1) {
    io_.out = &out_;
    io_.in = &in_;
  }

  TermPool pool_;
  Relation input_;
  Relation out_rel_;
  std::ostringstream out_;
  std::istringstream in_;
  IoEnv io_;
};

TEST_F(IoBuiltinsTest, LookupTable) {
  EXPECT_TRUE(FindBuiltinProc("write", 1).has_value());
  EXPECT_FALSE(FindBuiltinProc("write", 2).has_value());
  EXPECT_TRUE(FindBuiltinProc("nl", 0).has_value());
  EXPECT_TRUE(FindBuiltinProc("read", 1).has_value());
  EXPECT_TRUE(FindBuiltinProc("read_line", 1).has_value());
  EXPECT_TRUE(FindBuiltinProc("true", 0).has_value());
  EXPECT_FALSE(FindBuiltinProc("print", 1).has_value());
  // Fixedness: all I/O fixed, `true` not.
  EXPECT_TRUE(FindBuiltinProc("write", 1)->fixed);
  EXPECT_FALSE(FindBuiltinProc("true", 0)->fixed);
}

TEST_F(IoBuiltinsTest, WriteSymbolsRaw) {
  input_.Insert(Tuple{pool_.MakeSymbol("Hello, world")});
  ASSERT_TRUE(ExecBuiltinProc(BuiltinProc::kWrite, &pool_, &io_, input_,
                              &out_rel_)
                  .ok());
  EXPECT_EQ(out_.str(), "Hello, world");
  // Output relation echoes the inputs (all succeed).
  EXPECT_EQ(out_rel_.size(), 1u);
}

TEST_F(IoBuiltinsTest, WriteNonSymbolsInSourceSyntax) {
  std::vector<TermId> args{pool_.MakeInt(1), pool_.MakeInt(2)};
  input_.Insert(Tuple{pool_.MakeCompound("p", args)});
  ASSERT_TRUE(ExecBuiltinProc(BuiltinProc::kWrite, &pool_, &io_, input_,
                              &out_rel_)
                  .ok());
  EXPECT_EQ(out_.str(), "p(1,2)");
}

TEST_F(IoBuiltinsTest, WritelnSortsCanonically) {
  input_.Insert(Tuple{pool_.MakeInt(2)});
  input_.Insert(Tuple{pool_.MakeInt(1)});
  ASSERT_TRUE(ExecBuiltinProc(BuiltinProc::kWriteln, &pool_, &io_, input_,
                              &out_rel_)
                  .ok());
  EXPECT_EQ(out_.str(), "1\n2\n");
}

TEST_F(IoBuiltinsTest, NlWritesNewline) {
  Relation unit("in", 0);
  unit.Insert(Tuple{});
  Relation out_unit("out", 0);
  ASSERT_TRUE(
      ExecBuiltinProc(BuiltinProc::kNl, &pool_, &io_, unit, &out_unit).ok());
  EXPECT_EQ(out_.str(), "\n");
  EXPECT_EQ(out_unit.size(), 1u);
}

TEST_F(IoBuiltinsTest, ReadParsesGroundTerm) {
  in_.str("p(1, 'two')\n");
  Relation unit("in", 0);
  unit.Insert(Tuple{});
  ASSERT_TRUE(ExecBuiltinProc(BuiltinProc::kRead, &pool_, &io_, unit,
                              &out_rel_)
                  .ok());
  ASSERT_EQ(out_rel_.size(), 1u);
  TermId t = (*out_rel_.begin())[0];
  ASSERT_TRUE(pool_.IsCompound(t));
  EXPECT_EQ(pool_.ToString(t), "p(1,two)");
}

TEST_F(IoBuiltinsTest, ReadFallsBackToRawSymbol) {
  in_.str("not really a term!!\n");
  Relation unit("in", 0);
  unit.Insert(Tuple{});
  ASSERT_TRUE(ExecBuiltinProc(BuiltinProc::kRead, &pool_, &io_, unit,
                              &out_rel_)
                  .ok());
  TermId t = (*out_rel_.begin())[0];
  ASSERT_TRUE(pool_.IsSymbol(t));
  EXPECT_EQ(pool_.SymbolName(t), "not really a term!!");
}

TEST_F(IoBuiltinsTest, ReadLineKeepsRawText) {
  in_.str("p(1)\n");
  Relation unit("in", 0);
  unit.Insert(Tuple{});
  ASSERT_TRUE(ExecBuiltinProc(BuiltinProc::kReadLine, &pool_, &io_, unit,
                              &out_rel_)
                  .ok());
  TermId t = (*out_rel_.begin())[0];
  ASSERT_TRUE(pool_.IsSymbol(t));
  EXPECT_EQ(pool_.SymbolName(t), "p(1)");
}

TEST_F(IoBuiltinsTest, ReadAtEofFails) {
  Relation unit("in", 0);
  unit.Insert(Tuple{});
  EXPECT_TRUE(ExecBuiltinProc(BuiltinProc::kRead, &pool_, &io_, unit,
                              &out_rel_)
                  .IsIoError());
}

TEST_F(IoBuiltinsTest, TrueEmitsUnit) {
  Relation unit("in", 0);
  unit.Insert(Tuple{});
  Relation out_unit("out", 0);
  ASSERT_TRUE(ExecBuiltinProc(BuiltinProc::kTrue, &pool_, &io_, unit,
                              &out_unit)
                  .ok());
  EXPECT_EQ(out_unit.size(), 1u);
  EXPECT_EQ(out_.str(), "");
}

}  // namespace
}  // namespace gluenail
