/// Differential tests for batch-at-a-time execution (src/exec/vector/):
/// every program must produce identical answers whether pipelineable ops
/// run batch-at-a-time or tuple-at-a-time, on both executors, with serial
/// and parallel fixpoints — and the row accounting (EXPLAIN ANALYZE
/// actual rows, ExecStats::rows_scanned, the per-batch row-scan budget)
/// must stay exact in both modes.

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "src/api/engine.h"

namespace gluenail {
namespace {

struct Config {
  ExecOptions::Strategy strategy;
  ExecOptions::BatchMode batch;
  IndexPolicy policy = IndexPolicy::kAdaptive;
  int threads = 1;
};

std::vector<Config> AllConfigs() {
  std::vector<Config> out;
  for (auto strategy : {ExecOptions::Strategy::kMaterialized,
                        ExecOptions::Strategy::kPipelined}) {
    for (auto batch : {ExecOptions::BatchMode::kOff,
                       ExecOptions::BatchMode::kAlways,
                       ExecOptions::BatchMode::kAuto}) {
      for (auto policy : {IndexPolicy::kNeverIndex, IndexPolicy::kAdaptive,
                          IndexPolicy::kAlwaysIndex}) {
        out.push_back(Config{strategy, batch, policy});
      }
    }
  }
  // Parallel fixpoint workers consume delta partitions through the same
  // batch runner; one config per mode keeps the matrix affordable.
  out.push_back(Config{ExecOptions::Strategy::kPipelined,
                       ExecOptions::BatchMode::kOff,
                       IndexPolicy::kAdaptive, 4});
  out.push_back(Config{ExecOptions::Strategy::kPipelined,
                       ExecOptions::BatchMode::kAlways,
                       IndexPolicy::kAdaptive, 4});
  return out;
}

std::unique_ptr<Engine> MakeEngine(const Config& c) {
  EngineOptions opts;
  opts.exec.strategy = c.strategy;
  opts.exec.batch_mode = c.batch;
  opts.index_policy = c.policy;
  opts.num_threads = c.threads;
  return std::make_unique<Engine>(opts);
}

std::string Render(Engine* engine, const Engine::QueryResult& r) {
  std::string out;
  for (size_t i = 0; i < r.rows.size(); ++i) {
    if (i != 0) out += ";";
    out += TupleToString(engine->terms(), r.rows[i]);
  }
  return out;
}

/// Runs the same scenario under every (strategy x batch-mode x policy)
/// config and expects identical answers.
void ExpectBatchParity(const std::function<void(Engine*)>& setup,
                       const std::vector<std::string>& goals) {
  std::vector<std::string> reference;
  bool first = true;
  for (const Config& c : AllConfigs()) {
    std::unique_ptr<Engine> engine = MakeEngine(c);
    setup(engine.get());
    std::vector<std::string> answers;
    for (const std::string& g : goals) {
      Result<Engine::QueryResult> r = engine->Query(g);
      ASSERT_TRUE(r.ok()) << g << ": " << r.status();
      answers.push_back(Render(engine.get(), *r));
    }
    if (first) {
      reference = answers;
      first = false;
    } else {
      EXPECT_EQ(answers, reference)
          << "strategy=" << static_cast<int>(c.strategy)
          << " batch=" << static_cast<int>(c.batch)
          << " policy=" << static_cast<int>(c.policy)
          << " threads=" << c.threads;
    }
  }
}

TEST(BatchParityTest, JoinChainsAndArithmetic) {
  std::mt19937 rng(20260809);
  std::uniform_int_distribution<int> v(0, 40);
  std::string facts;
  for (int i = 0; i < 120; ++i) {
    facts += StrCat("a(", v(rng), ",", v(rng), ").\n");
    facts += StrCat("b(", v(rng), ",", v(rng), ").\n");
    if (i % 3 == 0) facts += StrCat("c(", v(rng), ",", v(rng), ").\n");
  }
  ExpectBatchParity(
      [&](Engine* e) {
        std::string src =
            "module kb;\n"
            "edb a(X,Y); edb b(X,Y); edb c(X,Y);\n"
            // Three-deep keyed chain plus compare binds: the batch runner
            // must gather keys per lane and evaluate bound arithmetic.
            "chain(X,W) :- a(X,Y) & b(Y,Z) & c(Z,W).\n"
            "scaled(X,S) :- a(X,Y) & S = X * 2 + Y & S > 20.\n"
            // Same-op repeated variable: bind-then-check within one match.
            "diag(X) :- a(X,X).\n"
            "cross(X) :- a(X,Y) & b(Y,X).\n" +
            facts + "end\n";
        ASSERT_TRUE(e->LoadProgram(src).ok());
      },
      {"chain(X,W)", "scaled(X,S)", "diag(X)", "cross(X)", "a(7,Y)"});
}

TEST(BatchParityTest, NegationShapes) {
  std::mt19937 rng(4097);
  std::uniform_int_distribution<int> v(0, 30);
  std::string facts;
  for (int i = 0; i < 80; ++i) {
    facts += StrCat("n(", v(rng), ").\n");
    if (i % 2 == 0) facts += StrCat("banned(", v(rng), ").\n");
    if (i % 5 == 0) facts += StrCat("pairs(", v(rng), ",", v(rng), ").\n");
  }
  ExpectBatchParity(
      [&](Engine* e) {
        std::string src =
            "module kb;\n"
            "edb n(X); edb banned(X); edb pairs(X,Y); edb nothing(X);\n"
            // Keyed negmatch: the negated column is bound.
            "keep(X) :- n(X) & !banned(X).\n"
            // Scan negmatch: no bound column, pure existence check.
            "lonely(X) :- n(X) & !pairs(_,_).\n"
            // Partially bound negmatch over a binary relation.
            "nopair(X) :- n(X) & !pairs(X,_).\n"
            // Negation against a declared-but-empty relation: everything
            // survives, and the runner must not dereference a null arena.
            "all(X) :- n(X) & !nothing(X).\n" +
            facts + "end\n";
        ASSERT_TRUE(e->LoadProgram(src).ok());
      },
      {"keep(X)", "lonely(X)", "nopair(X)", "all(X)"});
}

TEST(BatchParityTest, RandomRecursiveGraphs) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 3; ++trial) {
    int n = 15 + trial * 10;
    std::uniform_int_distribution<int> node(0, n - 1);
    std::string facts;
    for (int i = 0; i < n * 3; ++i) {
      facts += StrCat("edge(", node(rng), ",", node(rng), ").\n");
    }
    ExpectBatchParity(
        [&](Engine* e) {
          std::string src =
              "module kb;\nedb edge(X,Y);\n"
              "path(X,Y) :- edge(X,Y).\n"
              "path(X,Z) :- path(X,Y) & edge(Y,Z).\n" +
              facts + "end\n";
          ASSERT_TRUE(e->LoadProgram(src).ok());
        },
        {"path(0,Y)", "path(X,Y)", "path(X,0)"});
  }
}

TEST(BatchParityTest, GroupedAggregatesAroundBatches) {
  std::mt19937 rng(991);
  std::uniform_int_distribution<int> g(0, 8), v(1, 50);
  std::vector<std::pair<int, int>> facts;
  for (int i = 0; i < 150; ++i) facts.emplace_back(g(rng), v(rng));
  ExpectBatchParity(
      [&](Engine* e) {
        for (auto& [grp, val] : facts) {
          ASSERT_TRUE(e->AddFact(StrCat("m(", grp, ",", val, ").")).ok());
        }
        // Matches on both sides of the group_by/aggregate barriers: group
        // ids must ride through the lane buffers unchanged.
        ASSERT_TRUE(e->ExecuteStatement(
                         "tot(G, S) := m(G, V) & group_by(G) & S = sum(V).")
                        .ok());
        ASSERT_TRUE(e->ExecuteStatement(
                         "cnt(G, C) := m(G, V) & V > 10 & group_by(G) & "
                         "C = count(V).")
                        .ok());
      },
      {"tot(G,S)", "tot(G,S) & S > 100", "cnt(G,C)"});
}

TEST(BatchParityTest, StructuralPatternsFallBackToTuples) {
  // Structural column patterns are outside the batch runner's compiled
  // column actions; under kAlways they must take the tuple path and still
  // agree, including when mixed with batchable ops in one rule body.
  ExpectBatchParity(
      [](Engine* e) {
        std::string src =
            "module kb;\nedb shape(S); edb w(X);\n"
            "area(A) :- shape(rect(W,H)) & A = W * H.\n"
            "wide(W) :- shape(rect(W,_)) & w(X) & W > X.\n"
            "shape(rect(3,4)). shape(rect(10,2)). shape(circle(5)).\n"
            "w(1). w(5). w(9).\n"
            "end\n";
        ASSERT_TRUE(e->LoadProgram(src).ok());
      },
      {"area(A)", "wide(W)"});
}

TEST(BatchParityTest, ChunkBoundaryRowCounts) {
  // Relation sizes straddling the 4096-row arena chunk / batch size: the
  // last partial batch, an exactly-full batch, and a batch that spills one
  // lane into a second block must all round-trip.
  for (int n : {4095, 4096, 4097}) {
    std::string facts;
    for (int i = 0; i < n; ++i) {
      facts += StrCat("big(", i, ",", i % 97, ").\n");
    }
    for (auto strategy : {ExecOptions::Strategy::kMaterialized,
                          ExecOptions::Strategy::kPipelined}) {
      std::string reference;
      size_t reference_rows = 0;
      for (auto batch : {ExecOptions::BatchMode::kOff,
                         ExecOptions::BatchMode::kAlways}) {
        std::unique_ptr<Engine> engine =
            MakeEngine(Config{strategy, batch});
        std::string src =
            "module kb;\nedb big(X,Y);\n"
            "hit(X) :- big(X,Y) & Y < 3.\n"
            "last(X) :- big(X,Y) & X > " + StrCat(n - 3) + ".\n" +
            facts + "end\n";
        ASSERT_TRUE(engine->LoadProgram(src).ok());
        Result<Engine::QueryResult> all = engine->Query("big(X,Y)");
        ASSERT_TRUE(all.ok()) << all.status();
        EXPECT_EQ(all->rows.size(), static_cast<size_t>(n)) << "n=" << n;
        Result<Engine::QueryResult> hit = engine->Query("hit(X)");
        Result<Engine::QueryResult> last = engine->Query("last(X)");
        ASSERT_TRUE(hit.ok() && last.ok());
        std::string rendered = Render(engine.get(), *hit) + "|" +
                               Render(engine.get(), *last);
        if (batch == ExecOptions::BatchMode::kOff) {
          reference = rendered;
          reference_rows = all->rows.size();
        } else {
          EXPECT_EQ(rendered, reference) << "n=" << n;
          EXPECT_EQ(all->rows.size(), reference_rows) << "n=" << n;
        }
      }
    }
  }
}

TEST(BatchStatsTest, AlwaysEngagesAndOffDoesNot) {
  for (auto strategy : {ExecOptions::Strategy::kMaterialized,
                        ExecOptions::Strategy::kPipelined}) {
    for (auto batch : {ExecOptions::BatchMode::kOff,
                       ExecOptions::BatchMode::kAlways}) {
      std::unique_ptr<Engine> engine = MakeEngine(Config{strategy, batch});
      for (int i = 0; i < 50; ++i) {
        ASSERT_TRUE(
            engine->AddFact(StrCat("e(", i, ",", i + 1, ").")).ok());
      }
      Result<Engine::QueryResult> r = engine->Query("e(X,Y) & Y > 10");
      ASSERT_TRUE(r.ok()) << r.status();
      if (batch == ExecOptions::BatchMode::kAlways) {
        EXPECT_GT(engine->exec_stats().batch_segments, 0u);
        EXPECT_GT(engine->exec_stats().batch_rows, 0u);
      } else {
        EXPECT_EQ(engine->exec_stats().batch_segments, 0u);
        EXPECT_EQ(engine->exec_stats().batch_rows, 0u);
      }
    }
  }
}

TEST(BatchStatsTest, AutoFollowsPlannerEstimate) {
  // kAuto (the default) takes the batch path only where the planner's
  // est_rows clears PlannerOptions::batch_min_work. A 5000-row full scan
  // qualifies; a 10-row relation does not.
  Engine big;  // defaults: kAuto, statistics cost model
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(big.AddFact(StrCat("big(", i, ",", i % 7, ").")).ok());
  }
  Result<Engine::QueryResult> r = big.Query("big(X,Y) & Y > 3");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GT(big.exec_stats().batch_segments, 0u);

  Engine tiny;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(tiny.AddFact(StrCat("tiny(", i, ",", i % 7, ").")).ok());
  }
  Result<Engine::QueryResult> t = tiny.Query("tiny(X,Y) & Y > 3");
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(tiny.exec_stats().batch_segments, 0u);
}

TEST(BatchAccountingTest, ExplainAnalyzeIdenticalAcrossModes) {
  // EXPLAIN ANALYZE must render byte-identical output in both modes: the
  // plan (and its batch hints) comes from the same planner, and per-batch
  // row counting keeps every actual= exact, not approximate.
  for (auto strategy : {ExecOptions::Strategy::kMaterialized,
                        ExecOptions::Strategy::kPipelined}) {
    std::string reference;
    for (auto batch : {ExecOptions::BatchMode::kOff,
                       ExecOptions::BatchMode::kAlways}) {
      std::unique_ptr<Engine> engine = MakeEngine(Config{strategy, batch});
      for (int i = 0; i < 5000; ++i) {
        ASSERT_TRUE(
            engine->AddFact(StrCat("big(", i, ",", i % 97, ").")).ok());
        if (i % 50 == 0) {
          ASSERT_TRUE(engine->AddFact(StrCat("sel(", i % 97, ").")).ok());
        }
      }
      ExplainOptions opts;
      opts.analyze = true;
      Result<std::string> plan = engine->ExplainStatement(
          "out(X) := big(X, Y) & sel(Y) & X > 100.", opts);
      ASSERT_TRUE(plan.ok()) << plan.status();
      EXPECT_NE(plan->find("actual="), std::string::npos) << *plan;
      if (batch == ExecOptions::BatchMode::kOff) {
        reference = *plan;
      } else {
        EXPECT_EQ(*plan, reference)
            << "strategy=" << static_cast<int>(strategy);
      }
    }
  }
}

TEST(BatchAccountingTest, RowsScannedIdenticalAcrossModes) {
  // rows_scanned (full-scan rows + index probe-chain rows) must not drift
  // between modes: the batch runner charges per chunk / per probe exactly
  // what the tuple loops tick per row. Pinned index policies keep the
  // adaptive conversion point out of the comparison.
  for (auto policy : {IndexPolicy::kNeverIndex, IndexPolicy::kAlwaysIndex}) {
    for (auto strategy : {ExecOptions::Strategy::kMaterialized,
                          ExecOptions::Strategy::kPipelined}) {
      uint64_t reference = 0;
      for (auto batch : {ExecOptions::BatchMode::kOff,
                         ExecOptions::BatchMode::kAlways}) {
        std::unique_ptr<Engine> engine =
            MakeEngine(Config{strategy, batch, policy});
        for (int i = 0; i < 600; ++i) {
          ASSERT_TRUE(
              engine->AddFact(StrCat("d(", i % 37, ",", i, ").")).ok());
          if (i < 37) {
            ASSERT_TRUE(engine->AddFact(StrCat("k(", i, ").")).ok());
          }
        }
        Result<Engine::QueryResult> r =
            engine->Query("k(X) & d(X,Y) & Y > 50");
        ASSERT_TRUE(r.ok()) << r.status();
        Result<Engine::QueryResult> neg = engine->Query("k(X) & !d(X,_)");
        ASSERT_TRUE(neg.ok()) << neg.status();
        uint64_t scanned = engine->exec_stats().rows_scanned;
        EXPECT_GT(scanned, 0u);
        if (batch == ExecOptions::BatchMode::kOff) {
          reference = scanned;
        } else {
          EXPECT_EQ(scanned, reference)
              << "policy=" << static_cast<int>(policy)
              << " strategy=" << static_cast<int>(strategy);
        }
      }
    }
  }
}

TEST(BatchAccountingTest, BudgetCatchesAccumulatedSmallProbes) {
  // Satellite regression for the unified per-batch row accounting: no
  // single probe chain here comes near kRowCheckInterval (each key chains
  // 60 rows), but 100 probes accumulate past it, and the deferred check
  // must still enforce the budget — small charges cannot slip under a
  // per-call threshold because there is no per-call threshold.
  for (auto batch : {ExecOptions::BatchMode::kOff,
                     ExecOptions::BatchMode::kAlways}) {
    EngineOptions opts;
    opts.exec.batch_mode = batch;
    opts.index_policy = IndexPolicy::kAlwaysIndex;
    Engine engine(opts);
    for (int key = 0; key < 100; ++key) {
      ASSERT_TRUE(engine.AddFact(StrCat("k(", key, ").")).ok());
      for (int j = 0; j < 60; ++j) {
        ASSERT_TRUE(
            engine.AddFact(StrCat("d(", key, ",", j, ").")).ok());
      }
    }
    QueryOptions qopts;
    qopts.limits.max_rows_scanned = 1000;
    Result<Engine::QueryResult> r = engine.Query("k(X) & d(X,Y)", qopts);
    EXPECT_TRUE(r.status().IsResourceExhausted())
        << "batch=" << static_cast<int>(batch) << ": " << r.status();
    // The same query fits comfortably under a budget sized for it.
    qopts.limits.max_rows_scanned = 50'000;
    Result<Engine::QueryResult> ok = engine.Query("k(X) & d(X,Y)", qopts);
    ASSERT_TRUE(ok.ok()) << ok.status();
    EXPECT_EQ(ok->rows.size(), 6000u);
  }
}

}  // namespace
}  // namespace gluenail
