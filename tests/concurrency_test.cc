/// Concurrency tests for the thread-safe engine core: concurrent term
/// interning, snapshot isolation (one writer, N readers, no torn state),
/// the read-only session discipline, and the parallel semi-naive
/// evaluator's determinism against the serial baseline. Built and run
/// under ThreadSanitizer via -DGLUENAIL_TSAN=ON (ctest -L tsan).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/api/engine.h"
#include "src/api/session.h"

namespace gluenail {
namespace {

// --- Term pool -----------------------------------------------------------

TEST(ConcurrencyTest, ConcurrentInterningYieldsOneIdPerTerm) {
  TermPool pool;
  constexpr int kThreads = 8;
  constexpr int kValues = 400;

  // Each thread interns the same overlapping universe of ints, floats,
  // symbols, and compounds; hash-consing must give every thread the same
  // id for the same term.
  std::vector<std::vector<TermId>> ids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &ids, t] {
      std::vector<TermId>& mine = ids[t];
      for (int i = 0; i < kValues; ++i) {
        // Stagger starting points so threads race on *different* fresh
        // terms, not just the same insertion order.
        int v = (i + t * 37) % kValues;
        TermId n = pool.MakeInt(v);
        TermId f = pool.MakeFloat(v + 0.5);
        TermId s = pool.MakeSymbol("sym_" + std::to_string(v));
        TermId inner[] = {n, f};
        TermId c = pool.MakeCompound(s, inner);
        TermId outer[] = {c, n};
        mine.push_back(pool.MakeCompound(s, outer));
      }
    });
  }
  for (std::thread& th : threads) th.join();

  // Re-intern serially and compare: identical inputs, identical ids.
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kValues; ++i) {
      int v = (i + t * 37) % kValues;
      TermId n = pool.MakeInt(v);
      TermId f = pool.MakeFloat(v + 0.5);
      TermId s = pool.MakeSymbol("sym_" + std::to_string(v));
      TermId inner[] = {n, f};
      TermId c = pool.MakeCompound(s, inner);
      TermId outer[] = {c, n};
      ASSERT_EQ(ids[t][static_cast<size_t>(i)], pool.MakeCompound(s, outer));
      ASSERT_EQ(pool.IntValue(n), v);
      ASSERT_EQ(pool.SymbolName(s), "sym_" + std::to_string(v));
    }
  }
}

// --- Snapshot isolation --------------------------------------------------

TEST(ConcurrencyTest, SnapshotsNeverObserveTornMultiRelationWrites) {
  Engine engine;
  ASSERT_TRUE(engine.AddFact("a(0).").ok());
  ASSERT_TRUE(engine.AddFact("b(0).").ok());
  TermId a = *engine.InternTerm("a");
  TermId b = *engine.InternTerm("b");

  constexpr int kWrites = 300;
  constexpr int kReaders = 4;
  std::atomic<bool> done{false};

  // The writer inserts a(i) and b(i) together under one writer-lock
  // critical section; a consistent snapshot must always show |a| == |b|.
  std::thread writer([&engine, &done] {
    for (int i = 1; i <= kWrites; ++i) {
      Status s = engine.Mutate([i](Database* edb, Database*, TermPool* pool) {
        edb->GetOrCreate(pool->MakeSymbol("a"), 1)
            ->Insert(Tuple{pool->MakeInt(i)});
        edb->GetOrCreate(pool->MakeSymbol("b"), 1)
            ->Insert(Tuple{pool->MakeInt(i)});
        return Status::OK();
      });
      ASSERT_TRUE(s.ok()) << s;
    }
    done.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&engine, &done, a, b] {
      Session session = engine.OpenSession();
      size_t last = 0;
      while (!done.load()) {
        Result<EngineSnapshot> snap = session.Snapshot();
        ASSERT_TRUE(snap.ok()) << snap.status();
        const RelationSnapshot* ra = snap->edb().Find(a, 1);
        const RelationSnapshot* rb = snap->edb().Find(b, 1);
        ASSERT_NE(ra, nullptr);
        ASSERT_NE(rb, nullptr);
        ASSERT_EQ(ra->size(), rb->size());
        ASSERT_GE(ra->size(), last);  // facts only accumulate
        last = ra->size();
      }
    });
  }
  writer.join();
  for (std::thread& th : readers) th.join();

  Result<EngineSnapshot> final_snap = engine.snapshot();
  ASSERT_TRUE(final_snap.ok());
  EXPECT_EQ(final_snap->edb().Find(a, 1)->size(),
            static_cast<size_t>(kWrites) + 1);
}

TEST(ConcurrencyTest, SnapshotOutlivesEngineMutation) {
  Engine engine;
  ASSERT_TRUE(engine.AddFact("p(1).").ok());
  TermId p = *engine.InternTerm("p");
  Result<EngineSnapshot> snap = engine.snapshot();
  ASSERT_TRUE(snap.ok());
  ASSERT_TRUE(engine.AddFact("p(2).").ok());
  // The old view is frozen at capture time.
  EXPECT_EQ(snap->edb().Find(p, 1)->size(), 1u);
  EXPECT_EQ(engine.snapshot()->edb().Find(p, 1)->size(), 2u);
}

// --- Concurrent NAIL! readers with a live writer -------------------------

TEST(ConcurrencyTest, ReadersSeeMonotonicFixpointWhileWriterAddsFacts) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(R"(
module kb;
edb edge(X,Y);
path(X,Y) :- edge(X,Y).
path(X,Z) :- path(X,Y) & edge(Y,Z).
edge(0,1).
end
)").ok());

  constexpr int kChain = 60;
  constexpr int kReaders = 4;
  std::atomic<bool> done{false};

  std::thread writer([&engine, &done] {
    for (int i = 1; i < kChain; ++i) {
      std::string fact = "edge(" + std::to_string(i) + "," +
                         std::to_string(i + 1) + ").";
      ASSERT_TRUE(engine.AddFact(fact).ok());
    }
    done.store(true);
  });

  // Each reader repeatedly queries the recursive predicate; every answer
  // set must be a fixpoint of *some* prefix of the writes — in a growing
  // chain from 0 that means the reachable set only ever grows and is
  // always a contiguous range {1..k}.
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&engine, &done] {
      Session session = engine.OpenSession();
      size_t last = 0;
      bool saw_done = false;
      while (!saw_done) {
        saw_done = done.load();  // probe before the query: one final pass
        Result<Engine::QueryResult> r = session.Query("path(0, Y)");
        ASSERT_TRUE(r.ok()) << r.status();
        ASSERT_GE(r->rows.size(), last);
        last = r->rows.size();
      }
      ASSERT_EQ(last, static_cast<size_t>(kChain));
    });
  }
  writer.join();
  for (std::thread& th : readers) th.join();
}

// --- Read-only session discipline ----------------------------------------

TEST(ConcurrencyTest, ReadOnlySessionRejectsSharedWrites) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(R"(
module m;
edb marker(X);
edb pairs(X,Y);
export pollute(:);
proc pollute(:)
  marker(99) += true.
end
export lookup(X:Y);
proc lookup(X:Y)
  return(X:Y) := pairs(X,Y).
end
pairs(1,10).
end
)").ok());

  Session session = engine.OpenSession();
  // A side-effect-free procedure is fine through a session...
  Result<std::vector<Tuple>> ok = session.Call("lookup", {{*engine.InternTerm("1")}});
  ASSERT_TRUE(ok.ok()) << ok.status();
  ASSERT_EQ(ok->size(), 1u);
  // ...but one that writes a shared relation is rejected, and the engine's
  // write path still accepts it.
  Result<std::vector<Tuple>> bad = session.Call("pollute", {Tuple{}});
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("read-only"), std::string::npos)
      << bad.status();
  EXPECT_TRUE(engine.Call("pollute", {Tuple{}}).ok());
  EXPECT_EQ(engine.RelationContents("marker", 1)->size(), 1u);
}

TEST(ConcurrencyTest, SessionMagicQueryLeavesSharedStateUntouched) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(R"(
module kb;
edb edge(X,Y);
path(X,Y) :- edge(X,Y).
path(X,Z) :- path(X,Y) & edge(Y,Z).
edge(1,2). edge(2,3). edge(3,4).
end
)").ok());
  Session session = engine.OpenSession();
  QueryOptions magic;
  magic.strategy = QueryStrategy::kMagic;
  Result<Engine::QueryResult> r = session.Query("path(1, Y)", magic);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->rows.size(), 3u);
  // The magic scratch relations stay private to the session's evaluation.
  Result<EngineSnapshot> snap = engine.snapshot();
  ASSERT_TRUE(snap.ok());
  snap->idb().ForEach([&](TermId, uint32_t, const RelationSnapshot& rel) {
    EXPECT_EQ(rel.name.find("$magic"), std::string::npos) << rel.name;
  });
}

// --- Parallel semi-naive determinism -------------------------------------

std::string DenseGraphModule() {
  // A deterministic pseudo-random graph: enough fan-out that fixpoint
  // deltas comfortably exceed the worker count.
  std::string facts;
  constexpr int kNodes = 120;
  for (int i = 0; i < kNodes; ++i) {
    facts += "edge(" + std::to_string(i) + "," +
             std::to_string((i * 7 + 3) % kNodes) + ").\n";
    facts += "edge(" + std::to_string(i) + "," +
             std::to_string((i * 13 + 5) % kNodes) + ").\n";
  }
  return "module kb;\nedb edge(X,Y);\n"
         "path(X,Y) :- edge(X,Y).\n"
         "path(X,Z) :- path(X,Y) & edge(Y,Z).\n" +
         facts + "end\n";
}

std::vector<Tuple> EvalRows(int num_threads, const std::string& module,
                            std::string_view goal,
                            uint64_t* parallel_batches = nullptr) {
  EngineOptions opts;
  opts.nail_mode = NailMode::kDirect;
  opts.num_threads = num_threads;
  Engine engine(opts);
  Status s = engine.LoadProgram(module);
  EXPECT_TRUE(s.ok()) << s;
  Result<Engine::QueryResult> r = engine.Query(goal);
  EXPECT_TRUE(r.ok()) << r.status();
  if (parallel_batches != nullptr) {
    *parallel_batches = engine.nail_engine()->parallel_batches();
  }
  return r.ok() ? r->rows : std::vector<Tuple>{};
}

TEST(ConcurrencyTest, ParallelTransitiveClosureMatchesSerial) {
  const std::string module = DenseGraphModule();
  std::vector<Tuple> serial = EvalRows(1, module, "path(X,Y)");
  uint64_t batches = 0;
  std::vector<Tuple> parallel = EvalRows(4, module, "path(X,Y)", &batches);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);  // byte-identical canonical rows
  EXPECT_GT(batches, 0u) << "parallel evaluator never engaged";
}

TEST(ConcurrencyTest, ParallelSameGenerationMatchesSerial) {
  // Non-linear recursion (E7's same-generation shape): two delta rules
  // per iteration, each partitioned independently.
  std::string facts;
  constexpr int kFan = 3, kDepth = 4;
  int next = 1;
  std::vector<int> frontier = {0};
  for (int d = 0; d < kDepth; ++d) {
    std::vector<int> children;
    for (int p : frontier) {
      for (int c = 0; c < kFan; ++c) {
        facts += "up(" + std::to_string(next) + "," + std::to_string(p) +
                 ").\n";
        facts += "down(" + std::to_string(p) + "," + std::to_string(next) +
                 ").\n";
        children.push_back(next++);
      }
    }
    frontier = std::move(children);
  }
  const std::string module =
      "module kb;\nedb up(X,Y);\nedb down(X,Y);\nedb flat(X,Y);\n"
      "sg(X,Y) :- flat(X,Y).\n"
      "sg(X,Y) :- up(X,X1) & sg(X1,Y1) & down(Y1,Y).\n" +
      facts + "flat(0,0).\nend\n";

  std::vector<Tuple> serial = EvalRows(1, module, "sg(X,Y)");
  uint64_t batches = 0;
  std::vector<Tuple> parallel = EvalRows(4, module, "sg(X,Y)", &batches);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
  EXPECT_GT(batches, 0u);
}

TEST(ConcurrencyTest, ParallelWithStratifiedNegationMatchesSerial) {
  // The negation stratum falls back to the serial path; the recursive
  // stratum still parallelizes. Results must match exactly.
  const std::string module =
      "module kb;\nedb edge(X,Y);\nedb node(X);\n"
      "path(X,Y) :- edge(X,Y).\n"
      "path(X,Z) :- path(X,Y) & edge(Y,Z).\n"
      "unreached(X) :- node(X) & !path(0,X).\n"
      "node(0). node(1). node(2). node(3). node(4). node(5). node(6). "
      "node(7). node(8). node(9).\n"
      "edge(0,1). edge(1,2). edge(2,3). edge(3,1). edge(5,6). edge(6,7).\n"
      "end\n";
  std::vector<Tuple> serial = EvalRows(1, module, "unreached(X)");
  std::vector<Tuple> parallel = EvalRows(4, module, "unreached(X)");
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST(ConcurrencyTest, NumThreadsForcesDirectModeTransparently) {
  // kCompiledGlue + num_threads > 1 silently runs the direct evaluator;
  // the observable results are mode-independent.
  EngineOptions opts;
  opts.nail_mode = NailMode::kCompiledGlue;
  opts.num_threads = 4;
  Engine engine(opts);
  ASSERT_TRUE(engine.LoadProgram(DenseGraphModule()).ok());
  Result<Engine::QueryResult> r = engine.Query("path(0, Y)");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->rows.empty());
}

// --- Atomic relation versions --------------------------------------------

TEST(ConcurrencyTest, RelationVersionReadableWhileWriterMutates) {
  Engine engine;
  ASSERT_TRUE(engine.AddFact("v(0).").ok());
  TermId v = *engine.InternTerm("v");
  std::atomic<bool> done{false};

  std::thread writer([&engine, &done] {
    for (int i = 1; i <= 500; ++i) {
      Status s = engine.Mutate([i](Database* edb, Database*, TermPool* pool) {
        edb->GetOrCreate(pool->MakeSymbol("v"), 1)
            ->Insert(Tuple{pool->MakeInt(i)});
        return Status::OK();
      });
      ASSERT_TRUE(s.ok());
    }
    done.store(true);
  });

  // Snapshot versions must be monotone: each capture happens at or after
  // the previous one. (version() itself is an atomic read; TSan verifies
  // there is no data race against the writer's bumps.)
  Session session = engine.OpenSession();
  uint64_t last = 0;
  while (!done.load()) {
    Result<EngineSnapshot> snap = session.Snapshot();
    ASSERT_TRUE(snap.ok());
    const RelationSnapshot* rel = snap->edb().Find(v, 1);
    ASSERT_NE(rel, nullptr);
    ASSERT_GE(rel->version, last);
    last = rel->version;
  }
  writer.join();
  // A fast writer can finish before the loop's first capture; one final
  // snapshot observes its completed writes either way.
  Result<EngineSnapshot> snap = session.Snapshot();
  ASSERT_TRUE(snap.ok());
  const RelationSnapshot* rel = snap->edb().Find(v, 1);
  ASSERT_NE(rel, nullptr);
  ASSERT_GE(rel->version, last);
  EXPECT_GE(rel->version, 1u);
}

// --- Tracing under concurrency -------------------------------------------

TEST(ConcurrencyTest, ConcurrentTracedSessionsRecordPrivateTraces) {
  // N sessions trace queries in parallel while another thread hammers
  // DumpMetrics (whose pull callbacks read engine state under the shared
  // lock). Sinks are thread-local and rings are per-session, so TSan must
  // see no races and every session must end up with its own trace.
  Engine engine;
  constexpr int kFacts = 200;
  Status s = engine.Mutate([](Database* edb, Database*, TermPool* pool) {
    Relation* e = edb->GetOrCreate(pool->MakeSymbol("edge"), 2);
    for (int i = 0; i < kFacts; ++i) {
      e->Insert(Tuple{pool->MakeInt(i), pool->MakeInt(i + 1)});
    }
    return Status::OK();
  });
  ASSERT_TRUE(s.ok()) << s;

  constexpr int kThreads = 6;
  constexpr int kQueries = 25;
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  std::thread scraper([&engine, &done] {
    while (!done.load()) {
      std::string dump = engine.DumpMetrics();
      ASSERT_NE(dump.find("gluenail_queries_total"), std::string::npos);
    }
  });

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&engine, &failures, t] {
      Session session = engine.OpenSession();
      QueryOptions opts;
      opts.trace = true;
      // Each thread binds a different first column so traces differ.
      std::string goal =
          "edge(" + std::to_string(t) + ",Y) & edge(Y,Z)";
      for (int i = 0; i < kQueries; ++i) {
        Result<Engine::QueryResult> r = session.Query(goal, opts);
        if (!r.ok() || r->rows.size() != 1) {
          failures.fetch_add(1);
          return;
        }
      }
      std::shared_ptr<const QueryTrace> trace = session.last_trace();
      if (trace == nullptr || trace->query != goal ||
          trace->spans.empty()) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  done.store(true);
  scraper.join();

  EXPECT_EQ(failures.load(), 0);
  // Explicit session traces never leak into the engine-level ring.
  EXPECT_EQ(engine.last_trace(), nullptr);
  EXPECT_NE(engine.DumpMetrics().find("gluenail_queries_traced_total"),
            std::string::npos);
}

}  // namespace
}  // namespace gluenail
