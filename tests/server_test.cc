/// \file server_test.cc
/// \brief The service-layer suite: wire framing (torn / truncated /
/// corrupted / oversized frames, seeded malformed-bytes fuzz), the stable
/// wire error enum, the Command/Response codecs, MutationBatch
/// round-trips, Session::Execute dispatch, and end-to-end Server/Client
/// runs including the N-clients-concurrent test the tsan config exercises.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <condition_variable>
#include <cstring>
#include <memory>
#include <random>
#include <thread>

#include "gtest/gtest.h"
#include "src/api/command.h"
#include "src/api/engine.h"
#include "src/common/strings.h"
#include "src/server/client.h"
#include "src/server/protocol.h"
#include "src/server/server.h"
#include "src/storage/mutation_batch.h"

namespace gluenail {
namespace {

// --- Wire error enum -----------------------------------------------------

constexpr StatusCode kAllCodes[] = {
    StatusCode::kOk,           StatusCode::kParseError,
    StatusCode::kCompileError, StatusCode::kRuntimeError,
    StatusCode::kIoError,      StatusCode::kInvalidArgument,
    StatusCode::kInternal,     StatusCode::kNotFound,
    StatusCode::kCancelled,    StatusCode::kResourceExhausted,
    StatusCode::kFailedPrecondition,
};

TEST(WireErrorTest, RoundTripsEveryStatusCode) {
  for (StatusCode code : kAllCodes) {
    WireError wire = WireErrorFromStatus(code);
    EXPECT_EQ(StatusCodeFromWireError(static_cast<uint8_t>(wire)), code)
        << "code " << static_cast<int>(code);
  }
}

TEST(WireErrorTest, WireValuesAreFrozen) {
  // These bytes are the protocol; changing them breaks deployed clients.
  EXPECT_EQ(static_cast<uint8_t>(WireErrorFromStatus(StatusCode::kOk)), 0);
  EXPECT_EQ(
      static_cast<uint8_t>(WireErrorFromStatus(StatusCode::kParseError)), 1);
  EXPECT_EQ(
      static_cast<uint8_t>(WireErrorFromStatus(StatusCode::kCancelled)), 8);
  EXPECT_EQ(static_cast<uint8_t>(
                WireErrorFromStatus(StatusCode::kResourceExhausted)),
            9);
  EXPECT_EQ(static_cast<uint8_t>(
                WireErrorFromStatus(StatusCode::kFailedPrecondition)),
            10);
}

TEST(WireErrorTest, UnknownBytesDecodeAsInternal) {
  EXPECT_EQ(StatusCodeFromWireError(200), StatusCode::kInternal);
  EXPECT_EQ(StatusCodeFromWireError(11), StatusCode::kInternal);
}

// --- Framing -------------------------------------------------------------

TEST(FramingTest, RoundTripsAFrame) {
  std::string bytes = EncodeFrame(FrameType::kCommand, "hello");
  ASSERT_EQ(bytes.size(), kFrameHeaderSize + 5);
  FrameDecoder dec;
  dec.Feed(bytes);
  Result<std::optional<WireFrame>> frame = dec.Next();
  ASSERT_TRUE(frame.ok()) << frame.status();
  ASSERT_TRUE(frame->has_value());
  EXPECT_EQ((*frame)->type, FrameType::kCommand);
  EXPECT_EQ((*frame)->payload, "hello");
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(FramingTest, TornDeliveryByteByByte) {
  // A frame arriving one byte at a time must parse exactly once, with
  // Next() reporting "need more" at every interior offset.
  std::string bytes = EncodeFrame(FrameType::kResponse, "torn payload");
  FrameDecoder dec;
  for (size_t i = 0; i + 1 < bytes.size(); ++i) {
    dec.Feed(std::string_view(&bytes[i], 1));
    Result<std::optional<WireFrame>> r = dec.Next();
    ASSERT_TRUE(r.ok()) << "offset " << i << ": " << r.status();
    ASSERT_FALSE(r->has_value()) << "offset " << i;
  }
  dec.Feed(std::string_view(&bytes[bytes.size() - 1], 1));
  Result<std::optional<WireFrame>> r = dec.Next();
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_TRUE(r->has_value());
  EXPECT_EQ((*r)->payload, "torn payload");
}

TEST(FramingTest, MultipleFramesInOneChunk) {
  std::string bytes = EncodeFrame(FrameType::kCommand, "one");
  bytes += EncodeFrame(FrameType::kCommand, "two");
  bytes += EncodeFrame(FrameType::kResponse, "three");
  FrameDecoder dec;
  dec.Feed(bytes);
  std::vector<std::string> payloads;
  while (true) {
    Result<std::optional<WireFrame>> r = dec.Next();
    ASSERT_TRUE(r.ok()) << r.status();
    if (!r->has_value()) break;
    payloads.push_back((*r)->payload);
  }
  EXPECT_EQ(payloads, (std::vector<std::string>{"one", "two", "three"}));
}

TEST(FramingTest, TruncatedFrameIsNotAFrame) {
  std::string bytes = EncodeFrame(FrameType::kCommand, "truncated");
  FrameDecoder dec;
  dec.Feed(std::string_view(bytes).substr(0, bytes.size() - 3));
  Result<std::optional<WireFrame>> r = dec.Next();
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->has_value());
  EXPECT_GT(dec.buffered(), 0u);
}

TEST(FramingTest, BadMagicFailsTheStream) {
  std::string bytes = EncodeFrame(FrameType::kCommand, "x");
  bytes[0] = 'X';
  FrameDecoder dec;
  dec.Feed(bytes);
  Result<std::optional<WireFrame>> r = dec.Next();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(FramingTest, UnknownFrameTypeFailsTheStream) {
  std::string bytes = EncodeFrame(FrameType::kCommand, "x");
  bytes[4] = 9;
  FrameDecoder dec;
  dec.Feed(bytes);
  EXPECT_FALSE(dec.Next().ok());
}

TEST(FramingTest, CorruptedPayloadFailsChecksum) {
  std::string bytes = EncodeFrame(FrameType::kCommand, "checksummed");
  bytes[kFrameHeaderSize + 2] ^= 0x40;  // flip one payload bit
  FrameDecoder dec;
  dec.Feed(bytes);
  Result<std::optional<WireFrame>> r = dec.Next();
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("checksum"), std::string::npos);
}

TEST(FramingTest, CorruptedLengthFailsChecksumOrBound) {
  std::string bytes = EncodeFrame(FrameType::kCommand, "length field");
  bytes[5] ^= 0x01;  // low byte of the declared length
  FrameDecoder dec;
  dec.Feed(bytes);
  // Depending on the flip direction this is either a short read (need
  // more bytes — and the stream then stalls) or a checksum mismatch;
  // what it must never be is a successfully decoded frame.
  Result<std::optional<WireFrame>> r = dec.Next();
  if (r.ok()) {
    EXPECT_FALSE(r->has_value());
  }
}

TEST(FramingTest, OversizedLengthRejectedBeforeAllocation) {
  // Header declaring a 4 GiB payload, with no payload bytes behind it: the
  // decoder must reject from the header alone (nothing to allocate from).
  FrameDecoder dec(/*max_payload=*/1024);
  std::string header;
  header.append(kFrameMagic, sizeof(kFrameMagic));
  header.push_back(1);                                       // kCommand
  header += std::string("\xff\xff\xff\xff", 4);              // length
  header += std::string(8, '\0');                            // checksum
  ASSERT_EQ(header.size(), kFrameHeaderSize);
  dec.Feed(header);
  Result<std::optional<WireFrame>> r = dec.Next();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(FramingTest, DefaultMaxPayloadAlsoEnforced) {
  FrameDecoder dec;
  std::string header;
  header.append(kFrameMagic, sizeof(kFrameMagic));
  header.push_back(2);
  header += std::string("\x01\x00\x00\x05", 4);  // ~83 MiB > 64 MiB cap
  header += std::string(8, '\0');
  dec.Feed(header);
  EXPECT_FALSE(dec.Next().ok());
}

TEST(FramingTest, SeededFuzzNeverCrashesAndBoundsMemory) {
  // Malformed random bytes must only ever yield "need more" or a clean
  // error — never a crash, hang, or giant allocation. Seeded so a failure
  // reproduces.
  std::mt19937_64 rng(424242);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<int> chunk_len(1, 64);
  for (int round = 0; round < 200; ++round) {
    FrameDecoder dec(/*max_payload=*/4096);
    size_t fed = 0;
    bool dead = false;
    while (fed < 512 && !dead) {
      std::string chunk;
      int n = chunk_len(rng);
      for (int i = 0; i < n; ++i) {
        chunk.push_back(static_cast<char>(byte(rng)));
      }
      // Bias some rounds toward valid-looking prefixes so the fuzz also
      // reaches the length/checksum paths, not just bad magic.
      if (round % 3 == 0 && fed == 0) {
        chunk = std::string(kFrameMagic, sizeof(kFrameMagic)) +
                std::string(1, '\x01') + chunk;
      }
      dec.Feed(chunk);
      fed += chunk.size();
      Result<std::optional<WireFrame>> r = dec.Next();
      if (!r.ok()) dead = true;  // stream failed cleanly: done
      ASSERT_LE(dec.buffered(), 4096u + kFrameHeaderSize + 600)
          << "decoder buffered far more than it was fed";
    }
  }
}

TEST(FramingTest, FuzzedMutationsOfValidFramesNeverCrash) {
  std::mt19937_64 rng(7);
  Command cmd = Command::Query("path(1,X)");
  std::string valid = EncodeFrame(FrameType::kCommand, EncodeCommand(cmd));
  std::uniform_int_distribution<size_t> pos(0, valid.size() - 1);
  std::uniform_int_distribution<int> byte(0, 255);
  for (int round = 0; round < 500; ++round) {
    std::string mutated = valid;
    int flips = 1 + static_cast<int>(rng() % 4);
    for (int i = 0; i < flips; ++i) {
      mutated[pos(rng)] = static_cast<char>(byte(rng));
    }
    FrameDecoder dec;
    dec.Feed(mutated);
    Result<std::optional<WireFrame>> r = dec.Next();
    if (r.ok() && r->has_value()) {
      // Checksum happened to survive (e.g. the mutation hit the payload
      // and checksum consistently — astronomically rare — or flipped a
      // byte to itself). The decoded payload must still either parse or
      // fail cleanly.
      Result<Command> decoded = DecodeCommand((*r)->payload);
      (void)decoded;
    }
  }
}

// --- Payload scalar codec ------------------------------------------------

TEST(ByteCodecTest, RoundTripsScalarsAndStrings) {
  ByteWriter w;
  w.PutU8(0xab);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  w.PutString("νγλ");  // non-ASCII bytes survive untouched
  w.PutString("");
  ByteReader r(w.bytes());
  EXPECT_EQ(*r.GetU8(), 0xab);
  EXPECT_EQ(*r.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(*r.GetU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(*r.GetString(), "νγλ");
  EXPECT_EQ(*r.GetString(), "");
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteCodecTest, TruncationFailsEveryGetter) {
  ByteReader r("ab");
  EXPECT_FALSE(r.GetU32().ok());
  EXPECT_FALSE(r.GetU64().ok());
  ByteWriter w;
  w.PutU32(100);  // string length prefix promising 100 bytes
  ByteReader r2(w.bytes());
  EXPECT_FALSE(r2.GetString().ok());
}

// --- Command codec -------------------------------------------------------

TEST(CommandCodecTest, RoundTripsQueryWithOptions) {
  WireQueryOptions opts;
  opts.strategy = QueryStrategy::kMagic;
  opts.timeout_millis = 1500;
  opts.max_tuples = 10;
  opts.max_arena_bytes = 1 << 20;
  opts.max_rows_scanned = 999;
  opts.trace = true;
  Command cmd = Command::Query("path(1,X) & X != 3", opts);
  Result<Command> rt = DecodeCommand(EncodeCommand(cmd));
  ASSERT_TRUE(rt.ok()) << rt.status();
  EXPECT_EQ(rt->kind, CommandKind::kQuery);
  EXPECT_EQ(rt->goal, "path(1,X) & X != 3");
  EXPECT_EQ(rt->options.strategy, QueryStrategy::kMagic);
  EXPECT_EQ(rt->options.timeout_millis, 1500u);
  EXPECT_EQ(rt->options.max_tuples, 10u);
  EXPECT_EQ(rt->options.max_arena_bytes, 1u << 20);
  EXPECT_EQ(rt->options.max_rows_scanned, 999u);
  EXPECT_TRUE(rt->options.trace);
}

TEST(CommandCodecTest, RoundTripsEveryKind) {
  MutationBatch batch;
  batch.Insert("edge(1,2)");
  batch.Erase("edge(3,4)");
  Command mutate = Command::MutateBatch(std::move(batch));
  mutate.statement = "p(X) := q(X).";

  const Command cmds[] = {
      Command::Ping(),
      Command::Query("q(X)"),
      std::move(mutate),
      Command::Explain("p(X) := q(X).", /*analyze=*/true),
      Command::LoadProgramText("q(1).\nq(2)."),
      Command::LoadProgramFile("/tmp/prog.gn"),
      Command::LoadEdbText("edge(1,2)."),
      Command::LoadEdbFile("/tmp/data.facts"),
      Command::SaveEdb("/tmp/out.facts"),
      Command::Metrics(MetricsFormat::kJson),
      Command::Slowlog(),
  };
  for (const Command& cmd : cmds) {
    Result<Command> rt = DecodeCommand(EncodeCommand(cmd));
    ASSERT_TRUE(rt.ok()) << CommandKindToString(cmd.kind) << ": "
                         << rt.status();
    EXPECT_EQ(rt->kind, cmd.kind);
    EXPECT_EQ(rt->goal, cmd.goal);
    EXPECT_EQ(rt->statement, cmd.statement);
    EXPECT_EQ(rt->analyze, cmd.analyze);
    EXPECT_EQ(rt->load_target, cmd.load_target);
    EXPECT_EQ(rt->path, cmd.path);
    EXPECT_EQ(rt->source, cmd.source);
    EXPECT_EQ(rt->metrics_format, cmd.metrics_format);
    EXPECT_EQ(rt->batch.Serialize(), cmd.batch.Serialize());
  }
}

TEST(CommandCodecTest, RejectsTrailingBytesAndEmptyPayload) {
  std::string payload = EncodeCommand(Command::Ping());
  EXPECT_FALSE(DecodeCommand(payload + "x").ok());
  EXPECT_FALSE(DecodeCommand("").ok());
}

TEST(CommandCodecTest, RejectsOutOfRangeEnums) {
  std::string payload = EncodeCommand(Command::Query("q(X)"));
  std::string bad = payload;
  bad[0] = 77;  // command kind byte
  EXPECT_FALSE(DecodeCommand(bad).ok());
}

// --- Response codec ------------------------------------------------------

TEST(ResponseCodecTest, RoundTripsRowsAsTermText) {
  Engine engine;
  ASSERT_TRUE(engine.AddFact("r(1, 'a b', f(2)).").ok());
  Session session = engine.OpenSession();
  Response resp = session.Execute(Command::Query("r(X, Y, Z)"));
  ASSERT_TRUE(resp.ok()) << resp.status;
  ASSERT_EQ(resp.rows.size(), 1u);

  Result<WireResponse> rt =
      DecodeResponse(EncodeResponse(resp, engine.terms()));
  ASSERT_TRUE(rt.ok()) << rt.status();
  EXPECT_TRUE(rt->ok());
  EXPECT_EQ(rt->vars, resp.vars);
  ASSERT_EQ(rt->rows.size(), 1u);
  ASSERT_EQ(rt->rows[0].size(), 3u);
  EXPECT_EQ(rt->rows[0][0], "1");
  EXPECT_EQ(rt->rows[0][1], "'a b'");
  EXPECT_EQ(rt->rows[0][2], "f(2)");
}

TEST(ResponseCodecTest, PreservesErrorCodeAndMessage) {
  TermPool pool;
  Response resp = Response::Error(Status::ParseError("unexpected ')'"));
  Result<WireResponse> rt = DecodeResponse(EncodeResponse(resp, pool));
  ASSERT_TRUE(rt.ok()) << rt.status();
  EXPECT_EQ(rt->status.code(), StatusCode::kParseError);
  EXPECT_NE(rt->status.message().find("unexpected ')'"), std::string::npos);
}

TEST(ResponseCodecTest, PreservesMutationCounts) {
  TermPool pool;
  Response resp = Response::Ok("done");
  resp.applied = 7;
  resp.inserted = 5;
  resp.erased = 2;
  Result<WireResponse> rt = DecodeResponse(EncodeResponse(resp, pool));
  ASSERT_TRUE(rt.ok()) << rt.status();
  EXPECT_EQ(rt->applied, 7u);
  EXPECT_EQ(rt->inserted, 5u);
  EXPECT_EQ(rt->erased, 2u);
  EXPECT_EQ(rt->text, "done");
}

TEST(ResponseCodecTest, RejectsRowCountLyingAboutPayloadSize) {
  // A hand-built payload whose row count field promises more data than
  // the payload holds must fail cleanly, not allocate 2^32 rows.
  TermPool pool;
  Response resp;
  std::string payload = EncodeResponse(resp, pool);
  // vars count is the first u32 after status byte + message; simpler:
  // truncate a valid payload at every length and require clean failure.
  Engine engine;
  ASSERT_TRUE(engine.AddFact("s(1).").ok());
  ASSERT_TRUE(engine.AddFact("s(2).").ok());
  ASSERT_TRUE(engine.AddFact("s(3).").ok());
  Session session = engine.OpenSession();
  Response full = session.Execute(Command::Query("s(X)"));
  std::string bytes = EncodeResponse(full, engine.terms());
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    Result<WireResponse> r =
        DecodeResponse(std::string_view(bytes).substr(0, cut));
    EXPECT_FALSE(r.ok()) << "prefix of " << cut << " bytes decoded";
  }
}

// --- MutationBatch -------------------------------------------------------

TEST(MutationBatchTest, SerializeParseRoundTrip) {
  MutationBatch batch;
  batch.Insert("edge(1,2)");
  batch.Insert("label(3, 'hello world')");
  batch.Erase("edge(9,9)");
  std::string text = batch.Serialize();
  Result<MutationBatch> rt = MutationBatch::Parse(text);
  ASSERT_TRUE(rt.ok()) << rt.status();
  EXPECT_EQ(rt->size(), 3u);
  EXPECT_EQ(rt->Serialize(), text);
}

TEST(MutationBatchTest, ParseRejectsCorruption) {
  MutationBatch batch;
  batch.Insert("edge(1,2)");
  std::string text = batch.Serialize();
  // Flip a byte in the body: checksum must catch it.
  std::string corrupt = text;
  corrupt[corrupt.size() - 3] ^= 1;
  EXPECT_FALSE(MutationBatch::Parse(corrupt).ok());
  // Wrong op count.
  std::string twice = text + "+ edge(5,6)\n";
  EXPECT_FALSE(MutationBatch::Parse(twice).ok());
  // Garbage header.
  EXPECT_FALSE(MutationBatch::Parse("nope\n+ edge(1,2)\n").ok());
}

TEST(MutationBatchTest, ApplyIsAllOrNothingOnValidation) {
  Engine engine;
  Status s = engine.Mutate([](Database* edb, Database*, TermPool* pool) {
    MutationBatch batch;
    batch.Insert("edge(1,2)");
    batch.Insert("X");  // a variable is not a ground fact
    Result<MutationBatch::ApplyReport> r = batch.Apply(edb, pool);
    EXPECT_FALSE(r.ok());
    return Status::OK();
  });
  ASSERT_TRUE(s.ok());
  // The valid first op must not have leaked into the EDB.
  Result<Engine::QueryResult> q = engine.Query("edge(X,Y)");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->rows.empty());
}

TEST(MutationBatchTest, InsertEraseCounts) {
  Engine engine;
  Session session = engine.OpenSession();
  MutationBatch batch;
  batch.Insert("edge(1,2)");
  batch.Insert("edge(1,2)");  // duplicate: applied but not inserted
  batch.Insert("edge(2,3)");
  batch.Erase("edge(7,7)");  // absent: applied but not erased
  Response resp = session.Execute(Command::MutateBatch(std::move(batch)));
  ASSERT_TRUE(resp.ok()) << resp.status;
  EXPECT_EQ(resp.applied, 4u);
  EXPECT_EQ(resp.inserted, 2u);
  EXPECT_EQ(resp.erased, 0u);
}

// --- End-to-end over a real socket ---------------------------------------

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<Server>(&engine_, ServerOptions{});
    ASSERT_TRUE(server_->Start().ok());
  }

  Client MustConnect() {
    Result<Client> c = Client::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(c.ok()) << c.status();
    return std::move(*c);
  }

  Engine engine_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, PingPongs) {
  Client client = MustConnect();
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(ServerTest, QueryMatchesInProcessResults) {
  ASSERT_TRUE(engine_
                  .LoadProgram(R"(
module kb;
edb edge(X,Y);
path(X,Y) :- edge(X,Y).
path(X,Z) :- path(X,Y) & edge(Y,Z).
edge(1,2). edge(2,3). edge(3,4).
end
)")
                  .ok());
  Client client = MustConnect();
  Result<WireResponse> remote = client.Execute(Command::Query("path(1,X)"));
  ASSERT_TRUE(remote.ok()) << remote.status();
  ASSERT_TRUE(remote->ok()) << remote->status;

  Result<Engine::QueryResult> local = engine_.Query("path(1,X)");
  ASSERT_TRUE(local.ok());
  ASSERT_EQ(remote->vars, local->vars);
  ASSERT_EQ(remote->rows.size(), local->rows.size());
  for (size_t i = 0; i < local->rows.size(); ++i) {
    ASSERT_EQ(remote->rows[i].size(), local->rows[i].size());
    for (size_t c = 0; c < local->rows[i].size(); ++c) {
      EXPECT_EQ(remote->rows[i][c], engine_.terms().ToString(local->rows[i][c]));
    }
  }
}

TEST_F(ServerTest, MutateThenQueryOverTheWire) {
  Client client = MustConnect();
  MutationBatch batch;
  batch.Insert("stock('acme', 42)");
  batch.Insert("stock('globex', 7)");
  Result<WireResponse> m = client.Execute(Command::MutateBatch(std::move(batch)));
  ASSERT_TRUE(m.ok()) << m.status();
  ASSERT_TRUE(m->ok()) << m->status;
  EXPECT_EQ(m->inserted, 2u);

  Result<WireResponse> q = client.Execute(Command::Query("stock(N, K)"));
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(q->ok());
  EXPECT_EQ(q->rows.size(), 2u);
}

TEST_F(ServerTest, LoadProgramTextAndExplain) {
  Client client = MustConnect();
  Result<WireResponse> load = client.Execute(Command::LoadProgramText(R"(
module kb;
edb q(X);
p(X) :- q(X).
q(1). q(2).
end
)"));
  ASSERT_TRUE(load.ok());
  ASSERT_TRUE(load->ok()) << load->status;
  EXPECT_NE(load->text.find("loaded"), std::string::npos);

  Result<WireResponse> q = client.Execute(Command::Query("p(X)"));
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->rows.size(), 2u);

  Result<WireResponse> ex =
      client.Execute(Command::Explain("out(X) := q(X) & X > 1."));
  ASSERT_TRUE(ex.ok());
  ASSERT_TRUE(ex->ok()) << ex->status;
  EXPECT_FALSE(ex->text.empty());
}

TEST_F(ServerTest, MetricsAndSlowlogOverTheWire) {
  Client client = MustConnect();
  Result<WireResponse> m = client.Execute(Command::Metrics());
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE(m->ok());
  EXPECT_NE(m->text.find("gluenail_"), std::string::npos);
  Result<WireResponse> s = client.Execute(Command::Slowlog());
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->ok());
}

TEST_F(ServerTest, ErrorCodesSurviveTheWire) {
  Client client = MustConnect();
  Result<WireResponse> r = client.Execute(Command::Query("p(X) &&& wat"));
  ASSERT_TRUE(r.ok()) << r.status();  // transport fine, engine said no
  EXPECT_FALSE(r->ok());
  EXPECT_EQ(r->status.code(), StatusCode::kParseError);
}

TEST_F(ServerTest, QueryGuardrailsApplyRemotely) {
  // A big enough relation that the row-scan budget must trip (the charge
  // is batched, so tiny scans can finish before the first check).
  MutationBatch batch;
  for (int i = 0; i < 5000; ++i) {
    batch.Insert(StrCat("nums(", i, ")"));
  }
  Client client = MustConnect();
  Result<WireResponse> ins =
      client.Execute(Command::MutateBatch(std::move(batch)));
  ASSERT_TRUE(ins.ok());
  ASSERT_TRUE(ins->ok()) << ins->status;
  ASSERT_EQ(ins->inserted, 5000u);

  WireQueryOptions opts;
  opts.max_rows_scanned = 1000;
  Result<WireResponse> r =
      client.Execute(Command::Query("nums(X) & X > 1", opts));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->ok());
  EXPECT_EQ(r->status.code(), StatusCode::kResourceExhausted);

  // The same query without guardrails returns the full answer.
  Result<WireResponse> full =
      client.Execute(Command::Query("nums(X) & X > 1"));
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(full->ok()) << full->status;
  EXPECT_EQ(full->rows.size(), 4998u);
}

TEST_F(ServerTest, GarbageBytesGetAnErrorResponseThenDisconnect) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  std::string garbage = "this is definitely not a GNP1 frame";
  ASSERT_EQ(send(fd, garbage.data(), garbage.size(), 0),
            static_cast<ssize_t>(garbage.size()));
  // The server answers with one final error response frame, then closes.
  std::string got;
  char buf[4096];
  ssize_t n;
  while ((n = recv(fd, buf, sizeof(buf), 0)) > 0) got.append(buf, n);
  close(fd);
  FrameDecoder dec;
  dec.Feed(got);
  Result<std::optional<WireFrame>> frame = dec.Next();
  ASSERT_TRUE(frame.ok()) << frame.status();
  ASSERT_TRUE(frame->has_value());
  Result<WireResponse> resp = DecodeResponse((*frame)->payload);
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_FALSE(resp->ok());
  EXPECT_EQ(server_->protocol_errors(), 1u);
}

TEST_F(ServerTest, StopIsIdempotentAndCountsWork) {
  Client client = MustConnect();
  ASSERT_TRUE(client.Ping().ok());
  client.Close();
  server_->Stop();
  server_->Stop();
  EXPECT_EQ(server_->connections_accepted(), 1u);
  EXPECT_EQ(server_->commands_served(), 1u);
  EXPECT_FALSE(server_->running());
}

TEST_F(ServerTest, ServerMetricsExported) {
  Client client = MustConnect();
  ASSERT_TRUE(client.Ping().ok());
  std::string dump = engine_.DumpMetrics();
  EXPECT_NE(dump.find("gluenail_server_connections_total"),
            std::string::npos);
  EXPECT_NE(dump.find("gluenail_server_commands_total"), std::string::npos);
}

// The tsan-labelled concurrency check: 8 clients hammer the same server —
// reads in parallel under the shared lock, mutations serialized behind
// the writer lock — while the admin surface is scraped. Run under
// -DGLUENAIL_TSAN=ON via tools/run_tests.sh tsan.
TEST_F(ServerTest, EightConcurrentClients) {
  ASSERT_TRUE(engine_
                  .LoadProgram(R"(
module kb;
edb edge(X,Y);
reach(X,Y) :- edge(X,Y).
reach(X,Z) :- reach(X,Y) & edge(Y,Z).
edge(1,2). edge(2,3). edge(3,1).
end
)")
                  .ok());
  constexpr int kClients = 8;
  constexpr int kRounds = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      Result<Client> c = Client::Connect("127.0.0.1", server_->port());
      if (!c.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kRounds; ++i) {
        if (t % 2 == 0) {
          // Readers: the recursive closure has 9 answers, always.
          Result<WireResponse> r = c->Execute(Command::Query("reach(X,Y)"));
          if (!r.ok() || !r->ok() || r->rows.size() != 9) ++failures;
        } else {
          // Writers: insert/erase a private fact, then check it's gone.
          MutationBatch ins;
          ins.Insert(StrCat("scratch(", t, ",", i, ")"));
          Result<WireResponse> r1 =
              c->Execute(Command::MutateBatch(std::move(ins)));
          if (!r1.ok() || !r1->ok() || r1->inserted != 1) ++failures;
          MutationBatch del;
          del.Erase(StrCat("scratch(", t, ",", i, ")"));
          Result<WireResponse> r2 =
              c->Execute(Command::MutateBatch(std::move(del)));
          if (!r2.ok() || !r2->ok() || r2->erased != 1) ++failures;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server_->connections_accepted(),
            static_cast<uint64_t>(kClients));
  // Every scratch fact was erased by its writer.
  Result<Engine::QueryResult> q = engine_.Query("scratch(X,Y)");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->rows.empty());
}

// --- Admission control ---------------------------------------------------

TEST(AdmissionControlTest, MaxConnectionsRejectsWithWireError) {
  Engine engine;
  ServerOptions opts;
  opts.max_connections = 2;
  Server server(&engine, opts);
  ASSERT_TRUE(server.Start().ok());

  // Fill both slots; Ping proves each worker is registered, so the next
  // accept sees conns_.size() == 2 deterministically.
  Result<Client> c1 = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c1->Ping().ok());
  Result<Client> c2 = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(c2.ok());
  ASSERT_TRUE(c2->Ping().ok());

  // The third connection is turned away with one wire-level error frame —
  // read it raw so the test never races the server's close.
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  std::string got;
  char buf[4096];
  ssize_t n;
  while ((n = recv(fd, buf, sizeof(buf), 0)) > 0) got.append(buf, n);
  close(fd);
  FrameDecoder dec;
  dec.Feed(got);
  Result<std::optional<WireFrame>> frame = dec.Next();
  ASSERT_TRUE(frame.ok()) << frame.status();
  ASSERT_TRUE(frame->has_value());
  Result<WireResponse> resp = DecodeResponse((*frame)->payload);
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_FALSE(resp->ok());
  EXPECT_EQ(resp->status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(server.connections_rejected(), 1u);
  EXPECT_NE(
      engine.DumpMetrics().find("gluenail_server_rejected_connections_total"),
      std::string::npos);

  // The slots still serve their owners.
  EXPECT_TRUE(c1->Ping().ok());
  EXPECT_TRUE(c2->Ping().ok());

  // Freeing a slot readmits: the next accept reaps the finished worker.
  c1->Close();
  bool admitted = false;
  for (int attempt = 0; attempt < 100 && !admitted; ++attempt) {
    Result<Client> c3 = Client::Connect("127.0.0.1", server.port());
    if (c3.ok() && c3->Ping().ok()) {
      admitted = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(admitted);
}

// Regression: the rejection response used to be written on the accept
// thread while holding conns_mu_. A rejected peer that never drains its
// receive buffer could park that send forever, wedging every future
// accept (and Stop()) behind one bad client. The stall hook emulates such
// a peer; the server must keep admitting clients while it blocks.
TEST(AdmissionControlTest, AcceptLoopSurvivesAPeerThatNeverReadsItsRejection) {
  Engine engine;
  ServerOptions opts;
  opts.max_connections = 1;
  struct Stall {
    std::mutex mu;
    std::condition_variable cv;
    bool release = false;
  };
  // shared_ptr: the hook runs on detached sender threads that can outlive
  // this test body.
  auto stall = std::make_shared<Stall>();
  opts.reject_send_stall_for_testing = [stall] {
    std::unique_lock<std::mutex> lock(stall->mu);
    stall->cv.wait_for(lock, std::chrono::seconds(10),
                       [&] { return stall->release; });
  };
  Server server(&engine, opts);
  ASSERT_TRUE(server.Start().ok());

  Result<Client> holder = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(holder.ok());
  ASSERT_TRUE(holder->Ping().ok());

  // The rejected peer: connects, never reads. Its rejection send is now
  // stalled inside the hook.
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  int bad = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(bad, 0);
  ASSERT_EQ(connect(bad, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  for (int i = 0; i < 500 && server.connections_rejected() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GE(server.connections_rejected(), 1u);

  // While that send is still stalled: free the slot and prove a fresh
  // client is accepted and served. Raw socket + receive timeout, so a
  // wedged server surfaces as a clean failure rather than a hang.
  holder->Close();
  bool admitted = false;
  for (int attempt = 0; attempt < 20 && !admitted; ++attempt) {
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    timeval tv{};
    tv.tv_usec = 100 * 1000;
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      std::string ping =
          EncodeFrame(FrameType::kCommand, EncodeCommand(Command::Ping()));
      if (send(fd, ping.data(), ping.size(), MSG_NOSIGNAL) ==
          static_cast<ssize_t>(ping.size())) {
        char buf[512];
        admitted = recv(fd, buf, sizeof(buf), 0) > 0;
      }
    }
    close(fd);
    if (!admitted) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(admitted) << "accept loop wedged behind a stalled rejection";

  {
    std::lock_guard<std::mutex> lock(stall->mu);
    stall->release = true;
  }
  stall->cv.notify_all();
  close(bad);
  server.Stop();
}

// --- Client reconnect ----------------------------------------------------

TEST(ClientJitterSeedTest, SeedDerivationIsGuardedAwayFromZero) {
  // Nonzero candidates pass through; zero — xorshift64's fixed point,
  // which would freeze the backoff jitter fleet-wide — is remapped.
  EXPECT_EQ(internal::SanitizeJitterSeed(7), 7u);
  EXPECT_NE(internal::SanitizeJitterSeed(0), 0u);

  // An explicit seed wins verbatim.
  EXPECT_EQ(internal::DeriveJitterSeed(42, "primary", 4000), 42u);

  // Derived seeds follow the documented fold, sanitized.
  for (const char* host : {"", "localhost", "primary", "10.0.0.1"}) {
    for (uint16_t port : {uint16_t{0}, uint16_t{80}, uint16_t{65535}}) {
      const uint64_t seed = internal::DeriveJitterSeed(0, host, port);
      EXPECT_NE(seed, 0u) << host << ":" << port;
      EXPECT_EQ(seed,
                internal::SanitizeJitterSeed(
                    Fnv1a64(host, std::strlen(host)) ^ (port + 1)))
          << host << ":" << port;
    }
  }
}

TEST(ClientReconnectTest, ReconnectsToALiveServer) {
  Engine engine;
  Server server(&engine, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  ClientOptions copts;
  copts.max_retries = 3;
  copts.backoff_initial = std::chrono::milliseconds(1);
  copts.backoff_max = std::chrono::milliseconds(5);
  Result<Client> c = Client::Connect("127.0.0.1", server.port(), copts);
  ASSERT_TRUE(c.ok()) << c.status();
  ASSERT_TRUE(c->Ping().ok());

  // Transport loss (here: locally closed) → Execute fails fast, Reconnect
  // restores service on a fresh connection with a clean frame decoder.
  c->Close();
  EXPECT_FALSE(c->connected());
  EXPECT_FALSE(c->Execute(Command::Ping()).ok());
  ASSERT_TRUE(c->Reconnect().ok());
  EXPECT_TRUE(c->connected());
  EXPECT_TRUE(c->Ping().ok());
}

TEST(ClientReconnectTest, RetriesAreBoundedAgainstADeadServer) {
  // Grab a port that refuses connections: bind a listener, note its port,
  // close it.
  Engine engine;
  Server server(&engine, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  uint16_t dead_port = server.port();
  ClientOptions copts;
  copts.max_retries = 2;
  copts.backoff_initial = std::chrono::milliseconds(1);
  copts.backoff_max = std::chrono::milliseconds(4);
  Result<Client> live = Client::Connect("127.0.0.1", dead_port, copts);
  ASSERT_TRUE(live.ok());
  server.Stop();

  // Dial-with-retry against the dead port: bounded, and the error says
  // how many attempts were made.
  Result<Client> c = Client::Connect("127.0.0.1", dead_port, copts);
  ASSERT_FALSE(c.ok());
  EXPECT_NE(c.status().message().find("3 attempts"), std::string::npos);

  // Reconnect() of the previously-live client is bounded the same way.
  Status s = live->Reconnect();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("3 attempts"), std::string::npos);
}

TEST(ClientFrameCapTest, ConfiguredCapSurvivesConnectAndReconnect) {
  Engine engine;
  Server server(&engine, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  {
    // Enough rows that the query response frame clears any small cap.
    Session session = engine.OpenSession();
    MutationBatch batch;
    for (int i = 0; i < 200; ++i) batch.Insert(StrCat("wide(", i, ")"));
    ASSERT_TRUE(session.Execute(Command::MutateBatch(std::move(batch))).ok());
  }

  // A client with a small configured cap refuses the oversized (but
  // perfectly legal) response.
  ClientOptions small;
  small.max_frame_payload = 128;
  Result<Client> capped = Client::Connect("127.0.0.1", server.port(), small);
  ASSERT_TRUE(capped.ok()) << capped.status();
  EXPECT_TRUE(capped->Ping().ok());  // small frames are fine
  Result<WireResponse> r = capped->Execute(Command::Query("wide(X)"));
  EXPECT_FALSE(r.ok());

  // Reconnect() must keep the configured cap: it used to reset the
  // decoder to the default, silently raising the bound the caller chose.
  ASSERT_TRUE(capped->Reconnect().ok());
  EXPECT_TRUE(capped->Ping().ok());
  Result<WireResponse> r2 = capped->Execute(Command::Query("wide(X)"));
  EXPECT_FALSE(r2.ok()) << "cap was lost across Reconnect()";

  // The same response decodes fine under the default cap.
  Result<Client> roomy = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(roomy.ok());
  Result<WireResponse> full = roomy->Execute(Command::Query("wide(X)"));
  ASSERT_TRUE(full.ok()) << full.status();
  ASSERT_TRUE(full->ok()) << full->status;
  EXPECT_EQ(full->rows.size(), 200u);
}

// --- HTTP admin surface --------------------------------------------------

std::string HttpRequest(uint16_t port, const std::string& request) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return "";
  }
  (void)send(fd, request.data(), request.size(), 0);
  std::string got;
  char buf[8192];
  ssize_t n;
  while ((n = recv(fd, buf, sizeof(buf), 0)) > 0) got.append(buf, n);
  close(fd);
  return got;
}

TEST(AdminHttpTest, ServesHealthMetricsAndSlowlog) {
  Engine engine;
  ServerOptions opts;
  opts.admin_port = 0;
  Server server(&engine, opts);
  ASSERT_TRUE(server.Start().ok());
  uint16_t port = server.admin_port();

  std::string health = HttpRequest(port, "GET /healthz HTTP/1.0\r\n\r\n");
  EXPECT_NE(health.find("200"), std::string::npos);
  EXPECT_NE(health.find("ok"), std::string::npos);

  std::string metrics = HttpRequest(port, "GET /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(metrics.find("200"), std::string::npos);
  EXPECT_NE(metrics.find("gluenail_"), std::string::npos);

  std::string json =
      HttpRequest(port, "GET /metrics?format=json HTTP/1.0\r\n\r\n");
  EXPECT_NE(json.find("application/json"), std::string::npos);

  std::string slowlog = HttpRequest(port, "GET /slowlog HTTP/1.0\r\n\r\n");
  EXPECT_NE(slowlog.find("200"), std::string::npos);

  std::string missing = HttpRequest(port, "GET /nope HTTP/1.0\r\n\r\n");
  EXPECT_NE(missing.find("404"), std::string::npos);

  std::string post = HttpRequest(port, "POST /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(post.find("405"), std::string::npos);
}

// --- Session::Execute dispatch (in-process, no socket) -------------------

TEST(SessionExecuteTest, PingQueryMutateExplainThroughOneEntryPoint) {
  Engine engine;
  Session session = engine.OpenSession();

  Response ping = session.Execute(Command::Ping());
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping.text, "pong");

  MutationBatch batch;
  batch.Insert("edge(1,2)");
  batch.Insert("edge(2,3)");
  Response mut = session.Execute(Command::MutateBatch(std::move(batch)));
  ASSERT_TRUE(mut.ok()) << mut.status;
  EXPECT_EQ(mut.inserted, 2u);

  Response q = session.Execute(Command::Query("edge(X,Y)"));
  ASSERT_TRUE(q.ok()) << q.status;
  EXPECT_EQ(q.rows.size(), 2u);
  EXPECT_EQ(q.vars, (std::vector<std::string>{"X", "Y"}));

  Response ex = session.Execute(
      Command::Explain("closure(X,Y) := edge(X,Y)."));
  ASSERT_TRUE(ex.ok()) << ex.status;
  EXPECT_FALSE(ex.text.empty());

  Response bad = session.Execute(Command::Query("((("));
  EXPECT_FALSE(bad.ok());
}

TEST(SessionExecuteTest, SaveAndReloadEdbThroughCommands) {
  std::string path = ::testing::TempDir() + "/server_test_edb.facts";
  {
    Engine engine;
    Session session = engine.OpenSession();
    MutationBatch batch;
    batch.Insert("city('berlin', 3600000)");
    batch.Insert("city('tallinn', 460000)");
    ASSERT_TRUE(
        session.Execute(Command::MutateBatch(std::move(batch))).ok());
    ASSERT_TRUE(session.Execute(Command::SaveEdb(path)).ok());
  }
  Engine engine;
  Session session = engine.OpenSession();
  ASSERT_TRUE(session.Execute(Command::LoadEdbFile(path)).ok());
  Response q = session.Execute(Command::Query("city(N, P)"));
  ASSERT_TRUE(q.ok()) << q.status;
  EXPECT_EQ(q.rows.size(), 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gluenail
