/// Tests for Engine::ExplainStatement (plain and ANALYZE forms) and the
/// magic query strategy.

#include <gtest/gtest.h>

#include "src/api/engine.h"

namespace gluenail {
namespace {

TEST(ExplainTest, ShowsKeyedSelectionAfterReorder) {
  // This test documents the *syntactic* reorder heuristic, kept as the
  // A/B baseline for the cost-based planner.
  EngineOptions opts;
  opts.planner.cost_model = PlannerOptions::CostModel::kSyntactic;
  Engine engine(opts);
  ASSERT_TRUE(engine.AddFact("seed(1).").ok());
  ASSERT_TRUE(engine.AddFact("big(1,2).").ok());
  Result<std::string> plan =
      engine.ExplainStatement("out(Y) := big(S, X) & lookup(X, Y) & "
                              "seed(S).");
  ASSERT_TRUE(plan.ok()) << plan.status();
  // The reorderer runs seed first; big then probes keyed on its first
  // column; lookup keyed on its first column.
  size_t seed_pos = plan->find("match edb seed");
  size_t big_pos = plan->find("match edb big");
  size_t lookup_pos = plan->find("match edb lookup");
  ASSERT_NE(seed_pos, std::string::npos) << *plan;
  ASSERT_NE(big_pos, std::string::npos);
  ASSERT_NE(lookup_pos, std::string::npos);
  EXPECT_LT(seed_pos, big_pos);
  EXPECT_LT(big_pos, lookup_pos);
  EXPECT_NE(plan->find("match edb big/2 keyed[c0]"), std::string::npos)
      << *plan;
}

TEST(ExplainTest, CostModelOrdersBySelectivity) {
  Engine engine;  // cost_model defaults to kStatistics
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        engine.AddFact("big(" + std::to_string(i) + "," +
                       std::to_string(i + 1) + ").").ok());
  }
  ASSERT_TRUE(engine.AddFact("tiny(5).").ok());
  ASSERT_TRUE(engine.AddFact("tiny(6).").ok());
  ASSERT_TRUE(engine.AddFact("tiny(7).").ok());
  // Written order scans big (100 rows) first. The statistics planner runs
  // tiny (3 rows) first and probes big keyed on its now-bound column —
  // and, since big is large and the probe repeats, schedules the index
  // build up front.
  Result<std::string> plan =
      engine.ExplainStatement("out(Y) := big(X, Y) & tiny(X).");
  ASSERT_TRUE(plan.ok()) << plan.status();
  size_t tiny_pos = plan->find("match edb tiny");
  size_t big_pos = plan->find("match edb big/2 keyed[c0]");
  ASSERT_NE(tiny_pos, std::string::npos) << *plan;
  ASSERT_NE(big_pos, std::string::npos) << *plan;
  EXPECT_LT(tiny_pos, big_pos);
  EXPECT_NE(plan->find("; est="), std::string::npos) << *plan;
  EXPECT_NE(plan->find("; build-index"), std::string::npos) << *plan;
}

TEST(ExplainTest, AnalyzeShowsEstimatedVsActualRowsOnBothExecutors) {
  for (auto strategy : {ExecOptions::Strategy::kMaterialized,
                        ExecOptions::Strategy::kPipelined}) {
    EngineOptions eopts;
    eopts.exec.strategy = strategy;
    Engine engine(eopts);
    ASSERT_TRUE(engine.AddFact("e(1,2).").ok());
    ASSERT_TRUE(engine.AddFact("e(2,3).").ok());
    ExplainOptions opts;
    opts.analyze = true;
    Result<std::string> plan =
        engine.ExplainStatement("out(X,Y) := e(X,Y).", opts);
    ASSERT_TRUE(plan.ok()) << plan.status();
    EXPECT_NE(plan->find("est=2 actual=2"), std::string::npos) << *plan;
    // ANALYZE executes the statement, side effects included.
    Result<Engine::QueryResult> rows = engine.Query("out(X, Y)");
    ASSERT_TRUE(rows.ok()) << rows.status();
    EXPECT_EQ(rows->rows.size(), 2u);
  }
}

TEST(ExplainTest, ShowsBarriersAndHead) {
  Engine engine;
  Result<std::string> plan = engine.ExplainStatement(
      "avg(C, A) := m(C, V) & group_by(C) & A = mean(V).");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan->find("group_by"), std::string::npos);
  EXPECT_NE(plan->find("aggregate mean"), std::string::npos);
  EXPECT_NE(plan->find("fixed"), std::string::npos);
  EXPECT_NE(plan->find("head: := edb avg/2"), std::string::npos) << *plan;
}

TEST(ExplainTest, ShowsModifyKeyAndUpdates) {
  Engine engine;
  Result<std::string> plan = engine.ExplainStatement(
      "salary(E, S) +=[E] raise(E, S) & --raise(E, S).");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan->find("delete from edb raise/2"), std::string::npos)
      << *plan;
  EXPECT_NE(plan->find("key_mask=1"), std::string::npos);
}

TEST(ExplainTest, ShowsLoopStructureViaStats) {
  Engine engine;
  Result<std::string> plan = engine.ExplainStatement(
      "repeat p(X) += q(X). until unchanged(p(_));");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan->find("match edb q"), std::string::npos) << *plan;
}

TEST(QueryMagicTest, BoundQueryMatchesPlainQuery) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(R"(
module kb;
edb edge(X,Y);
path(X,Y) :- edge(X,Y).
path(X,Z) :- edge(X,Y) & path(Y,Z).
edge(1,2). edge(2,3). edge(10,11).
end
)").ok());
  QueryOptions magic_opts;
  magic_opts.strategy = QueryStrategy::kMagic;
  Result<Engine::QueryResult> magic = engine.Query("path(1, Y)", magic_opts);
  ASSERT_TRUE(magic.ok()) << magic.status();
  Result<Engine::QueryResult> plain = engine.Query("path(1, Y)");
  ASSERT_TRUE(plain.ok());
  ASSERT_EQ(magic->rows.size(), plain->rows.size());
  EXPECT_EQ(magic->vars, (std::vector<std::string>{"Y"}));
  for (size_t i = 0; i < magic->rows.size(); ++i) {
    EXPECT_EQ(magic->rows[i], plain->rows[i]);
  }
}

TEST(QueryMagicTest, WildcardsAreFreeColumns) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(R"(
module kb;
edb edge(X,Y);
path(X,Y) :- edge(X,Y).
path(X,Z) :- edge(X,Y) & path(Y,Z).
edge(1,2). edge(2,3).
end
)").ok());
  Result<Engine::QueryResult> r =
      engine.Query("path(1, _)", {QueryStrategy::kMagic});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->rows.size(), 2u);
}

TEST(QueryMagicTest, RejectsNonAtomGoals) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(R"(
module kb;
edb e(X);
p(X) :- e(X).
end
)").ok());
  EXPECT_TRUE(engine.Query("p(X) & p(Y)", {QueryStrategy::kMagic})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(engine.Query("p(X + 1)", {QueryStrategy::kMagic})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(engine.Query("zzz(X)", {QueryStrategy::kMagic})
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace gluenail
