/// Round-trip tests: printing an AST and re-parsing it must yield an
/// equivalent AST. The NAIL!-to-Glue compiler's generated code is checked
/// through the same printer, so round-tripping is load-bearing.

#include <gtest/gtest.h>

#include "src/ast/ast.h"
#include "src/parser/parser.h"

namespace gluenail {
namespace {

void ExpectTermRoundTrip(std::string_view src) {
  Result<ast::Term> first = ParseTermText(src);
  ASSERT_TRUE(first.ok()) << first.status();
  std::string printed = ast::ToString(*first);
  Result<ast::Term> second = ParseTermText(printed);
  ASSERT_TRUE(second.ok()) << "reparse of \"" << printed
                           << "\": " << second.status();
  EXPECT_TRUE(first->Equals(*second)) << printed;
}

TEST(AstPrinterTest, TermRoundTrips) {
  ExpectTermRoundTrip("wilson");
  ExpectTermRoundTrip("X");
  ExpectTermRoundTrip("_");
  ExpectTermRoundTrip("42");
  ExpectTermRoundTrip("-7");
  ExpectTermRoundTrip("2.5");
  ExpectTermRoundTrip("'quoted atom'");
  ExpectTermRoundTrip("f(X,1,g(a))");
  ExpectTermRoundTrip("students(cs99)(wilson)");
  ExpectTermRoundTrip("E(Y,Z)");
  ExpectTermRoundTrip("A+B*C");
  ExpectTermRoundTrip("(A+B)*C");
  ExpectTermRoundTrip("X mod 3");
  ExpectTermRoundTrip("min(T)");
}

void ExpectStatementRoundTrip(std::string_view src) {
  Result<ast::Statement> first = ParseStatement(src);
  ASSERT_TRUE(first.ok()) << first.status();
  std::string printed = ast::ToString(*first);
  Result<ast::Statement> second = ParseStatement(printed);
  ASSERT_TRUE(second.ok()) << "reparse of \"" << printed
                           << "\": " << second.status();
  EXPECT_EQ(printed, ast::ToString(*second)) << printed;
}

TEST(AstPrinterTest, StatementRoundTrips) {
  ExpectStatementRoundTrip("r(X,Y) += s(X,W) & t(f(W,X),Y).");
  ExpectStatementRoundTrip("p(X) := q(X) & X != 3.");
  ExpectStatementRoundTrip("p(X) -= q(X).");
  ExpectStatementRoundTrip("p(K,V) +=[K] q(K,V).");
  ExpectStatementRoundTrip(
      "coldest_city(Name) := daily_temp(Name,T) & T = min(T).");
  ExpectStatementRoundTrip(
      "avg(C,A) := g(C,S,G) & group_by(C) & A = mean(G).");
  ExpectStatementRoundTrip("d(S,T) := in(S,T) & S(X) & !T(X).");
  ExpectStatementRoundTrip("log(K) += try(K) & --possible(K,D) & ++seen(K).");
  ExpectStatementRoundTrip("return(X:Y) := connected(X,Y).");
  ExpectStatementRoundTrip("return(S,T:) := !different(S,T).");
  ExpectStatementRoundTrip(
      "repeat connected(X,Y) += connected(X,Z) & e(Z,Y). "
      "until unchanged(connected(_,_));");
  ExpectStatementRoundTrip(
      "repeat try(K) := possible(K,D). "
      "until {confirmed(K) | empty(possible(K,D))};");
  ExpectStatementRoundTrip("students(ID)(S) += attends(S,ID).");
}

TEST(AstPrinterTest, RuleRoundTrip) {
  Result<ast::NailRule> first = ParseRule("tc(E,X,Z) :- tc(E,X,Y) & E(Y,Z).");
  ASSERT_TRUE(first.ok());
  std::string printed = ast::ToString(*first);
  Result<ast::NailRule> second = ParseRule(printed);
  ASSERT_TRUE(second.ok()) << printed << ": " << second.status();
  EXPECT_EQ(printed, ast::ToString(*second));
}

TEST(AstPrinterTest, ModuleRoundTrip) {
  Result<ast::Module> first = ParseModule(R"(
module graph;
edb e(X,Y);
export tc_e(X:Y);
path(X,Y) :- e(X,Y).
path(X,Z) :- path(X,Y) & e(Y,Z).
procedure tc_e (X:Y)
rels connected(X,Y);
  connected(X,Y):= in(X) & e(X,Y).
  repeat
    connected(X,Y)+= connected(X,Z) & e(Z,Y).
  until unchanged( connected(_,_));
  return(X:Y):= connected(X,Y).
end
end
)");
  ASSERT_TRUE(first.ok()) << first.status();
  std::string printed = ast::ToString(*first);
  Result<ast::Module> second = ParseModule(printed);
  ASSERT_TRUE(second.ok()) << printed << "\n" << second.status();
  EXPECT_EQ(printed, ast::ToString(*second));
  EXPECT_EQ(second->procedures.size(), 1u);
  EXPECT_EQ(second->rules.size(), 2u);
}

TEST(AstPrinterTest, QuotedSymbolsStayQuoted) {
  Result<ast::Term> t = ParseTermText("'Hello World'");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(ast::ToString(*t), "'Hello World'");
}

TEST(AstPrinterTest, UntilCondToString) {
  Result<ast::Statement> s = ParseStatement(
      "repeat p(X) := q(X). until !empty(p(_)) & unchanged(p(_));");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(ast::ToString(s->repeat().cond),
            "(!empty(p(_)) & unchanged(p(_)))");
}

}  // namespace
}  // namespace gluenail
