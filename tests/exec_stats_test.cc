/// Tests pinning the executor's observable cost model: pipeline break
/// counts (§9), duplicate-elimination counters, call counters, and the
/// strategy-dependent behaviours the benchmarks rely on.

#include <gtest/gtest.h>

#include "src/api/engine.h"

namespace gluenail {
namespace {

TEST(ExecStatsTest, PurePipelineHasNoBreaks) {
  EngineOptions opts;
  opts.exec.strategy = ExecOptions::Strategy::kPipelined;
  Engine engine(opts);
  ASSERT_TRUE(engine.AddFact("a(1).").ok());
  ASSERT_TRUE(engine.AddFact("b(1).").ok());
  ASSERT_TRUE(engine.ExecuteStatement("out(X) := a(X) & b(X) & X > 0.").ok());
  EXPECT_EQ(engine.exec_stats().pipeline_breaks, 0u);
}

TEST(ExecStatsTest, EachBarrierKindBreaks) {
  struct Case {
    const char* stmt;
    uint64_t min_breaks;
  };
  const Case cases[] = {
      {"out(M) := a(X) & M = max(X).", 1},                  // aggregate
      {"out(X, C) := a(X) & group_by(X) & C = count(X).", 2},
      {"out(X) := a(X) & ++log(X).", 1},                    // update
      {"out(X) := a(X) & writeln(X).", 1},                  // builtin call
  };
  for (const Case& c : cases) {
    EngineOptions opts;
    opts.exec.strategy = ExecOptions::Strategy::kPipelined;
    Engine engine(opts);
    std::ostringstream sink;
    engine.SetIo(&sink, nullptr);
    ASSERT_TRUE(engine.AddFact("a(1).").ok());
    ASSERT_TRUE(engine.ExecuteStatement(c.stmt).ok()) << c.stmt;
    EXPECT_GE(engine.exec_stats().pipeline_breaks, c.min_breaks) << c.stmt;
  }
}

TEST(ExecStatsTest, DuplicateRemovalCounted) {
  EngineOptions opts;
  opts.exec.strategy = ExecOptions::Strategy::kPipelined;
  opts.exec.dedup_at_breaks = true;
  Engine engine(opts);
  // 5 facts differing only in the wildcard column, then a barrier.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(engine.AddFact(StrCat("s(", i, ", 7).")).ok());
  }
  ASSERT_TRUE(
      engine.ExecuteStatement("out(K) := s(_, K) & ++touched(K).").ok());
  EXPECT_EQ(engine.exec_stats().duplicates_removed, 4u);
}

TEST(ExecStatsTest, CallCountersByKind) {
  Engine engine;
  std::ostringstream sink;
  engine.SetIo(&sink, nullptr);
  ASSERT_TRUE(engine.LoadProgram(R"(
module m;
export f(:);
proc g(:)
  return(:) := true.
end
proc f(:)
  return(:) := true & g() & writeln(done).
end
end
)").ok());
  ASSERT_TRUE(engine.Call("f", {{}}).ok());
  const ExecStats& stats = engine.exec_stats();
  // proc_calls counts procedure-as-subgoal calls (g from inside f); the
  // top-level Engine::Call is the caller, not a subgoal.
  EXPECT_GE(stats.proc_calls, 1u);
  EXPECT_GE(stats.builtin_calls, 2u);  // true + writeln
  EXPECT_EQ(stats.host_calls, 0u);
}

TEST(ExecStatsTest, MaterializedCountsNoPipelineBreaks) {
  // The break counter is a pipelined-strategy concept.
  EngineOptions opts;
  opts.exec.strategy = ExecOptions::Strategy::kMaterialized;
  Engine engine(opts);
  ASSERT_TRUE(engine.AddFact("a(1).").ok());
  ASSERT_TRUE(engine.ExecuteStatement("out(M) := a(X) & M = max(X).").ok());
  EXPECT_EQ(engine.exec_stats().pipeline_breaks, 0u);
}

TEST(ExecStatsTest, LoopIterationsCounted) {
  Engine engine;
  ASSERT_TRUE(engine.AddFact("n(1).").ok());
  ASSERT_TRUE(engine.ExecuteStatement(
                  "repeat n(Y) += n(X) & Y = X * 2 & Y < 100. "
                  "until unchanged(n(_));")
                  .ok());
  // 1..64: six productive passes plus the final no-change pass.
  EXPECT_GE(engine.exec_stats().loop_iterations, 7u);
}

TEST(ExecStatsTest, HeadTuplesCountNetChanges) {
  Engine engine;
  ASSERT_TRUE(engine.AddFact("a(1).").ok());
  ASSERT_TRUE(engine.AddFact("a(2).").ok());
  engine.ResetExecStats();
  ASSERT_TRUE(engine.ExecuteStatement("out(X) += a(X).").ok());
  EXPECT_EQ(engine.exec_stats().head_tuples, 2u);
  // Re-running inserts nothing new.
  engine.ResetExecStats();
  ASSERT_TRUE(engine.ExecuteStatement("out(X) += a(X).").ok());
  EXPECT_EQ(engine.exec_stats().head_tuples, 0u);
}

TEST(ExecStatsTest, StorageStatsAggregateCounters) {
  Engine engine;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(engine.AddFact(StrCat("e(", i % 7, ", ", i, ").")).ok());
    // Duplicate insert: costs dedup probes, changes nothing.
    ASSERT_TRUE(engine.AddFact(StrCat("e(", i % 7, ", ", i, ").")).ok());
  }
  ASSERT_TRUE(engine.ExecuteStatement("out(Y) := e(3, Y).").ok());
  StorageStats s = engine.storage_stats();
  EXPECT_GE(s.relations, 2u);  // e/2 and out/1
  // 50 facts in e/2 plus the 7 derived out/1 tuples (i % 7 == 3).
  EXPECT_GE(s.live_tuples, 57u);
  EXPECT_GT(s.arena_bytes, 0u);
  EXPECT_GT(s.dedup_probes, 50u);
  // The keyed body match went through either a scan or an index.
  EXPECT_GT(s.scan_rows + s.index_lookups, 0u);
  std::string line = FormatStorageStats(s);
  EXPECT_NE(line.find("arena bytes"), std::string::npos);
}

TEST(ExecStatsTest, PerOpRowCountersBothStrategies) {
  for (auto strategy : {ExecOptions::Strategy::kMaterialized,
                        ExecOptions::Strategy::kPipelined}) {
    EngineOptions opts;
    opts.exec.strategy = strategy;
    Engine engine(opts);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(engine.AddFact(StrCat("a(", i, ").")).ok());
    }
    engine.ResetExecStats();
    ASSERT_TRUE(engine.ExecuteStatement("out(X) := a(X) & X > 4.").ok());
    // The match streams all 10 rows; the filter passes 5..9.
    EXPECT_EQ(engine.exec_stats().match_rows, 10u);
    EXPECT_EQ(engine.exec_stats().compare_rows, 5u);

    engine.ResetExecStats();
    ASSERT_TRUE(engine.ExecuteStatement("neg(X) := a(X) & !b(X).").ok());
    EXPECT_EQ(engine.exec_stats().negmatch_rows, 10u);
  }
}

TEST(ExecStatsTest, BarrierOpRowCountersCounted) {
  for (auto strategy : {ExecOptions::Strategy::kMaterialized,
                        ExecOptions::Strategy::kPipelined}) {
    EngineOptions opts;
    opts.exec.strategy = strategy;
    Engine engine(opts);
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(engine.AddFact(StrCat("a(", i, ").")).ok());
    }
    engine.ResetExecStats();
    ASSERT_TRUE(engine.ExecuteStatement(
                    "out(X, C) := a(X) & group_by(X) & C = count(X).")
                    .ok());
    // Five singleton groups survive both barrier ops.
    EXPECT_EQ(engine.exec_stats().groupby_rows, 5u);
    EXPECT_EQ(engine.exec_stats().aggregate_rows, 5u);

    engine.ResetExecStats();
    ASSERT_TRUE(engine.ExecuteStatement("out2(X) := a(X) & ++log(X).").ok());
    EXPECT_EQ(engine.exec_stats().update_rows, 5u);
  }
}

TEST(ExecStatsTest, NailRefreshCounted) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(R"(
module kb;
edb e(X);
p(X) :- e(X).
e(1).
end
)").ok());
  engine.ResetExecStats();
  ASSERT_TRUE(engine.Query("p(X)").ok());
  EXPECT_GE(engine.exec_stats().nail_refreshes, 1u);
}

TEST(ExecStatsTest, FixpointReplansOnDeltaDrift) {
  // The iterate plans are first costed at LoadProgram time, before the
  // module facts reach the EDB — so the first fixpoint iteration sees a
  // delta volume far from the (empty) planning-time estimate and must
  // recompile the rule bodies against live statistics. Replanning lives
  // in the direct fixpoint driver.
  EngineOptions opts;
  opts.nail_mode = NailMode::kDirect;
  Engine engine(opts);
  std::string src =
      "module kb;\nedb edge(X,Y);\n"
      "path(X,Y) :- edge(X,Y).\n"
      "path(X,Z) :- path(X,Y) & edge(Y,Z).\n";
  for (int i = 0; i < 40; ++i) {
    src += StrCat("edge(", i, ",", i + 1, ").\n");
  }
  src += "end\n";
  ASSERT_TRUE(engine.LoadProgram(src).ok());
  Result<Engine::QueryResult> r = engine.Query("path(0, Y)");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->rows.size(), 40u);
  EXPECT_GE(engine.nail_engine()->replan_count(), 1u);
}

}  // namespace
}  // namespace gluenail
