#include "src/storage/relation.h"

#include <gtest/gtest.h>

#include "src/term/term_pool.h"

namespace gluenail {
namespace {

class RelationTest : public ::testing::Test {
 protected:
  Tuple T(std::initializer_list<int64_t> xs) {
    Tuple t;
    for (int64_t x : xs) t.push_back(pool_.MakeInt(x));
    return t;
  }

  TermPool pool_;
};

TEST_F(RelationTest, InsertAndContains) {
  Relation r("edge", 2);
  EXPECT_TRUE(r.Insert(T({1, 2})));
  EXPECT_TRUE(r.Contains(T({1, 2})));
  EXPECT_FALSE(r.Contains(T({2, 1})));
  EXPECT_EQ(r.size(), 1u);
}

TEST_F(RelationTest, DuplicatesAreRejected) {
  // Paper §2: "Predicates do not have duplicates."
  Relation r("edge", 2);
  EXPECT_TRUE(r.Insert(T({1, 2})));
  EXPECT_FALSE(r.Insert(T({1, 2})));
  EXPECT_EQ(r.size(), 1u);
}

TEST_F(RelationTest, EraseRemoves) {
  Relation r("edge", 2);
  r.Insert(T({1, 2}));
  r.Insert(T({3, 4}));
  EXPECT_TRUE(r.Erase(T({1, 2})));
  EXPECT_FALSE(r.Erase(T({1, 2})));
  EXPECT_FALSE(r.Contains(T({1, 2})));
  EXPECT_EQ(r.size(), 1u);
}

TEST_F(RelationTest, VersionBumpsOnlyOnChange) {
  Relation r("p", 1);
  uint64_t v0 = r.version();
  r.Insert(T({1}));
  uint64_t v1 = r.version();
  EXPECT_GT(v1, v0);
  r.Insert(T({1}));  // duplicate, no change
  EXPECT_EQ(r.version(), v1);
  r.Erase(T({2}));  // absent, no change
  EXPECT_EQ(r.version(), v1);
  r.Erase(T({1}));
  EXPECT_GT(r.version(), v1);
}

TEST_F(RelationTest, ClearEmptiesAndBumpsVersion) {
  Relation r("p", 1);
  r.Insert(T({1}));
  uint64_t v = r.version();
  r.Clear();
  EXPECT_TRUE(r.empty());
  EXPECT_GT(r.version(), v);
  // Clearing an already-empty relation is not a change.
  uint64_t v2 = r.version();
  r.Clear();
  EXPECT_EQ(r.version(), v2);
}

TEST_F(RelationTest, IterationSkipsErasedRows) {
  Relation r("p", 1);
  for (int i = 0; i < 10; ++i) r.Insert(T({i}));
  for (int i = 0; i < 10; i += 2) r.Erase(T({i}));
  int count = 0;
  for (RowView t : r) {
    EXPECT_EQ(pool_.IntValue(t[0]) % 2, 1);
    ++count;
  }
  EXPECT_EQ(count, 5);
}

TEST_F(RelationTest, ReinsertAfterErase) {
  Relation r("p", 1);
  r.Insert(T({7}));
  r.Erase(T({7}));
  EXPECT_TRUE(r.Insert(T({7})));
  EXPECT_TRUE(r.Contains(T({7})));
  EXPECT_EQ(r.size(), 1u);
}

TEST_F(RelationTest, SelectViaExplicitIndex) {
  Relation r("edge", 2);
  for (int i = 0; i < 100; ++i) {
    r.Insert(T({i % 10, i}));
  }
  r.EnsureIndex(0b01);
  std::vector<uint32_t> rows;
  r.Select(0b01, T({3}), &rows);
  EXPECT_EQ(rows.size(), 10u);
  for (uint32_t row : rows) {
    EXPECT_EQ(pool_.IntValue(r.row(row)[0]), 3);
  }
}

TEST_F(RelationTest, IndexIsMaintainedAcrossMutation) {
  Relation r("edge", 2);
  r.EnsureIndex(0b01);
  r.Insert(T({1, 10}));
  r.Insert(T({1, 11}));
  r.Insert(T({2, 20}));
  std::vector<uint32_t> rows;
  r.Select(0b01, T({1}), &rows);
  EXPECT_EQ(rows.size(), 2u);
  r.Erase(T({1, 10}));
  rows.clear();
  r.Select(0b01, T({1}), &rows);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(pool_.IntValue(r.row(rows[0])[1]), 11);
}

TEST_F(RelationTest, ScanSelectWithoutIndex) {
  Relation r("edge", 2);
  r.set_index_policy(IndexPolicy::kNeverIndex);
  for (int i = 0; i < 20; ++i) r.Insert(T({i % 4, i}));
  std::vector<uint32_t> rows;
  r.Select(0b01, T({2}), &rows);
  EXPECT_EQ(rows.size(), 5u);
  EXPECT_EQ(r.FindIndex(0b01), nullptr);
  EXPECT_GT(r.counters().scan_rows, 0u);
}

TEST_F(RelationTest, SelectOnSecondColumn) {
  Relation r("edge", 2);
  r.EnsureIndex(0b10);
  r.Insert(T({1, 5}));
  r.Insert(T({2, 5}));
  r.Insert(T({3, 6}));
  std::vector<uint32_t> rows;
  r.Select(0b10, T({5}), &rows);
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(RelationTest, SelectOnBothColumns) {
  Relation r("edge", 2);
  r.Insert(T({1, 5}));
  r.Insert(T({2, 5}));
  std::vector<uint32_t> rows;
  r.SelectConst(0b11, T({2, 5}), &rows);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(pool_.IntValue(r.row(rows[0])[0]), 2);
}

TEST_F(RelationTest, UnionDiffComputesDelta) {
  // The §10 uniondiff operator: the engine of semi-naive evaluation.
  Relation acc("tc", 2), src("new", 2), delta("delta", 2);
  acc.Insert(T({1, 2}));
  src.Insert(T({1, 2}));  // already present
  src.Insert(T({2, 3}));  // new
  src.Insert(T({3, 4}));  // new
  size_t added = acc.UnionDiff(src, &delta);
  EXPECT_EQ(added, 2u);
  EXPECT_EQ(acc.size(), 3u);
  EXPECT_EQ(delta.size(), 2u);
  EXPECT_FALSE(delta.Contains(T({1, 2})));
  EXPECT_TRUE(delta.Contains(T({2, 3})));
  EXPECT_TRUE(delta.Contains(T({3, 4})));
}

TEST_F(RelationTest, UnionDiffEmptyDeltaAtFixpoint) {
  Relation acc("tc", 2), src("new", 2), delta("delta", 2);
  acc.Insert(T({1, 2}));
  src.Insert(T({1, 2}));
  EXPECT_EQ(acc.UnionDiff(src, &delta), 0u);
  EXPECT_TRUE(delta.empty());
}

TEST_F(RelationTest, CopyFromReplaces) {
  Relation a("a", 1), b("b", 1);
  a.Insert(T({1}));
  b.Insert(T({2}));
  b.Insert(T({3}));
  a.CopyFrom(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_FALSE(a.Contains(T({1})));
  EXPECT_TRUE(a.Contains(T({3})));
}

TEST_F(RelationTest, SortedTuplesAreCanonical) {
  Relation r("p", 1);
  r.Insert(T({3}));
  r.Insert(T({1}));
  r.Insert(T({2}));
  std::vector<Tuple> sorted = r.SortedTuples(pool_);
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(pool_.IntValue(sorted[0][0]), 1);
  EXPECT_EQ(pool_.IntValue(sorted[2][0]), 3);
}

TEST_F(RelationTest, CompactPreservesContentAndIndexes) {
  Relation r("edge", 2);
  r.EnsureIndex(0b01);
  for (int i = 0; i < 50; ++i) r.Insert(T({i % 5, i}));
  for (int i = 0; i < 50; i += 2) r.Erase(T({i % 5, i}));
  size_t before = r.size();
  r.Compact();
  EXPECT_EQ(r.size(), before);
  EXPECT_NE(r.FindIndex(0b01), nullptr);
  std::vector<uint32_t> rows;
  r.Select(0b01, T({1}), &rows);
  for (uint32_t row : rows) {
    EXPECT_EQ(pool_.IntValue(r.row(row)[0]), 1);
  }
}

TEST_F(RelationTest, ZeroArityRelation) {
  Relation r("flag", 0);
  EXPECT_TRUE(r.empty());
  EXPECT_TRUE(r.Insert(Tuple{}));
  EXPECT_FALSE(r.Insert(Tuple{}));  // only one possible tuple
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Erase(Tuple{}));
  EXPECT_TRUE(r.empty());
}

TEST_F(RelationTest, ZeroArityCopyCompactSnapshot) {
  Relation a("flag", 0), b("copy", 0);
  a.Insert(Tuple{});
  b.CopyFrom(a);
  EXPECT_EQ(b.size(), 1u);
  b.Compact();
  EXPECT_TRUE(b.Contains(Tuple{}));
  auto snap = b.Snapshot(pool_);
  EXPECT_EQ(snap->size(), 1u);
  EXPECT_TRUE(snap->Contains(pool_, Tuple{}));
}

TEST_F(RelationTest, RowsAcrossChunkBoundaries) {
  // TupleArena chunks hold 4096 rows; cross several boundaries and check
  // every row reads back exactly, including after erases near the seams.
  constexpr int kN = 3 * 4096 + 37;
  Relation r("big", 2);
  for (int i = 0; i < kN; ++i) r.Insert(T({i, i + 1}));
  EXPECT_EQ(r.size(), static_cast<size_t>(kN));
  for (int i : {0, 4095, 4096, 4097, 8191, 8192, kN - 1}) {
    RowView row = r.row(static_cast<uint32_t>(i));
    EXPECT_EQ(pool_.IntValue(row[0]), i);
    EXPECT_EQ(pool_.IntValue(row[1]), i + 1);
  }
  r.Erase(T({4095, 4096}));
  r.Erase(T({4096, 4097}));
  EXPECT_EQ(r.size(), static_cast<size_t>(kN - 2));
  EXPECT_TRUE(r.Contains(T({4094, 4095})));
  EXPECT_FALSE(r.Contains(T({4096, 4097})));
  EXPECT_GT(r.arena_bytes(), 0u);
}

TEST_F(RelationTest, SnapshotIdenticalAfterCompact) {
  Relation r("p", 2);
  for (int i = 0; i < 200; ++i) r.Insert(T({i % 17, i}));
  for (int i = 0; i < 200; i += 3) r.Erase(T({i % 17, i}));
  std::vector<Tuple> before = r.SortedTuples(pool_);
  auto snap_before = r.Snapshot(pool_);
  r.Compact();
  // Compact bumps the version (row ids changed), so a fresh snapshot is
  // taken — but its contents must be byte-identical.
  auto snap_after = r.Snapshot(pool_);
  EXPECT_NE(snap_before.get(), snap_after.get());
  EXPECT_EQ(snap_before->tuples, snap_after->tuples);
  EXPECT_EQ(r.SortedTuples(pool_), before);
}

TEST_F(RelationTest, SortedTuplesIndependentOfInsertionOrder) {
  Relation fwd("f", 2), rev("r", 2);
  for (int i = 0; i < 64; ++i) fwd.Insert(T({i % 8, i}));
  for (int i = 63; i >= 0; --i) rev.Insert(T({i % 8, i}));
  EXPECT_EQ(fwd.SortedTuples(pool_), rev.SortedTuples(pool_));
}

TEST_F(RelationTest, DedupProbeCounterAdvances) {
  Relation r("p", 1);
  r.Insert(T({1}));
  uint64_t before = r.counters().dedup_probes;
  r.Contains(T({1}));
  r.Insert(T({1}));  // duplicate probe
  EXPECT_GT(r.counters().dedup_probes, before);
}

}  // namespace
}  // namespace gluenail
