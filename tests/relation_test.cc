#include "src/storage/relation.h"

#include <gtest/gtest.h>

#include "src/term/term_pool.h"

namespace gluenail {
namespace {

class RelationTest : public ::testing::Test {
 protected:
  Tuple T(std::initializer_list<int64_t> xs) {
    Tuple t;
    for (int64_t x : xs) t.push_back(pool_.MakeInt(x));
    return t;
  }

  TermPool pool_;
};

TEST_F(RelationTest, InsertAndContains) {
  Relation r("edge", 2);
  EXPECT_TRUE(r.Insert(T({1, 2})));
  EXPECT_TRUE(r.Contains(T({1, 2})));
  EXPECT_FALSE(r.Contains(T({2, 1})));
  EXPECT_EQ(r.size(), 1u);
}

TEST_F(RelationTest, DuplicatesAreRejected) {
  // Paper §2: "Predicates do not have duplicates."
  Relation r("edge", 2);
  EXPECT_TRUE(r.Insert(T({1, 2})));
  EXPECT_FALSE(r.Insert(T({1, 2})));
  EXPECT_EQ(r.size(), 1u);
}

TEST_F(RelationTest, EraseRemoves) {
  Relation r("edge", 2);
  r.Insert(T({1, 2}));
  r.Insert(T({3, 4}));
  EXPECT_TRUE(r.Erase(T({1, 2})));
  EXPECT_FALSE(r.Erase(T({1, 2})));
  EXPECT_FALSE(r.Contains(T({1, 2})));
  EXPECT_EQ(r.size(), 1u);
}

TEST_F(RelationTest, VersionBumpsOnlyOnChange) {
  Relation r("p", 1);
  uint64_t v0 = r.version();
  r.Insert(T({1}));
  uint64_t v1 = r.version();
  EXPECT_GT(v1, v0);
  r.Insert(T({1}));  // duplicate, no change
  EXPECT_EQ(r.version(), v1);
  r.Erase(T({2}));  // absent, no change
  EXPECT_EQ(r.version(), v1);
  r.Erase(T({1}));
  EXPECT_GT(r.version(), v1);
}

TEST_F(RelationTest, ClearEmptiesAndBumpsVersion) {
  Relation r("p", 1);
  r.Insert(T({1}));
  uint64_t v = r.version();
  r.Clear();
  EXPECT_TRUE(r.empty());
  EXPECT_GT(r.version(), v);
  // Clearing an already-empty relation is not a change.
  uint64_t v2 = r.version();
  r.Clear();
  EXPECT_EQ(r.version(), v2);
}

TEST_F(RelationTest, IterationSkipsErasedRows) {
  Relation r("p", 1);
  for (int i = 0; i < 10; ++i) r.Insert(T({i}));
  for (int i = 0; i < 10; i += 2) r.Erase(T({i}));
  int count = 0;
  for (RowView t : r) {
    EXPECT_EQ(pool_.IntValue(t[0]) % 2, 1);
    ++count;
  }
  EXPECT_EQ(count, 5);
}

TEST_F(RelationTest, ReinsertAfterErase) {
  Relation r("p", 1);
  r.Insert(T({7}));
  r.Erase(T({7}));
  EXPECT_TRUE(r.Insert(T({7})));
  EXPECT_TRUE(r.Contains(T({7})));
  EXPECT_EQ(r.size(), 1u);
}

TEST_F(RelationTest, SelectViaExplicitIndex) {
  Relation r("edge", 2);
  for (int i = 0; i < 100; ++i) {
    r.Insert(T({i % 10, i}));
  }
  r.EnsureIndex(0b01);
  std::vector<uint32_t> rows;
  r.Select(0b01, T({3}), &rows);
  EXPECT_EQ(rows.size(), 10u);
  for (uint32_t row : rows) {
    EXPECT_EQ(pool_.IntValue(r.row(row)[0]), 3);
  }
}

TEST_F(RelationTest, IndexIsMaintainedAcrossMutation) {
  Relation r("edge", 2);
  r.EnsureIndex(0b01);
  r.Insert(T({1, 10}));
  r.Insert(T({1, 11}));
  r.Insert(T({2, 20}));
  std::vector<uint32_t> rows;
  r.Select(0b01, T({1}), &rows);
  EXPECT_EQ(rows.size(), 2u);
  r.Erase(T({1, 10}));
  rows.clear();
  r.Select(0b01, T({1}), &rows);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(pool_.IntValue(r.row(rows[0])[1]), 11);
}

TEST_F(RelationTest, ScanSelectWithoutIndex) {
  Relation r("edge", 2);
  r.set_index_policy(IndexPolicy::kNeverIndex);
  for (int i = 0; i < 20; ++i) r.Insert(T({i % 4, i}));
  std::vector<uint32_t> rows;
  r.Select(0b01, T({2}), &rows);
  EXPECT_EQ(rows.size(), 5u);
  EXPECT_EQ(r.FindIndex(0b01), nullptr);
  EXPECT_GT(r.counters().scan_rows, 0u);
}

TEST_F(RelationTest, SelectOnSecondColumn) {
  Relation r("edge", 2);
  r.EnsureIndex(0b10);
  r.Insert(T({1, 5}));
  r.Insert(T({2, 5}));
  r.Insert(T({3, 6}));
  std::vector<uint32_t> rows;
  r.Select(0b10, T({5}), &rows);
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(RelationTest, SelectOnBothColumns) {
  Relation r("edge", 2);
  r.Insert(T({1, 5}));
  r.Insert(T({2, 5}));
  std::vector<uint32_t> rows;
  r.SelectConst(0b11, T({2, 5}), &rows);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(pool_.IntValue(r.row(rows[0])[0]), 2);
}

TEST_F(RelationTest, UnionDiffComputesDelta) {
  // The §10 uniondiff operator: the engine of semi-naive evaluation.
  Relation acc("tc", 2), src("new", 2), delta("delta", 2);
  acc.Insert(T({1, 2}));
  src.Insert(T({1, 2}));  // already present
  src.Insert(T({2, 3}));  // new
  src.Insert(T({3, 4}));  // new
  size_t added = acc.UnionDiff(src, &delta);
  EXPECT_EQ(added, 2u);
  EXPECT_EQ(acc.size(), 3u);
  EXPECT_EQ(delta.size(), 2u);
  EXPECT_FALSE(delta.Contains(T({1, 2})));
  EXPECT_TRUE(delta.Contains(T({2, 3})));
  EXPECT_TRUE(delta.Contains(T({3, 4})));
}

TEST_F(RelationTest, UnionDiffEmptyDeltaAtFixpoint) {
  Relation acc("tc", 2), src("new", 2), delta("delta", 2);
  acc.Insert(T({1, 2}));
  src.Insert(T({1, 2}));
  EXPECT_EQ(acc.UnionDiff(src, &delta), 0u);
  EXPECT_TRUE(delta.empty());
}

TEST_F(RelationTest, CopyFromReplaces) {
  Relation a("a", 1), b("b", 1);
  a.Insert(T({1}));
  b.Insert(T({2}));
  b.Insert(T({3}));
  a.CopyFrom(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_FALSE(a.Contains(T({1})));
  EXPECT_TRUE(a.Contains(T({3})));
}

TEST_F(RelationTest, SortedTuplesAreCanonical) {
  Relation r("p", 1);
  r.Insert(T({3}));
  r.Insert(T({1}));
  r.Insert(T({2}));
  std::vector<Tuple> sorted = r.SortedTuples(pool_);
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(pool_.IntValue(sorted[0][0]), 1);
  EXPECT_EQ(pool_.IntValue(sorted[2][0]), 3);
}

TEST_F(RelationTest, CompactPreservesContentAndIndexes) {
  Relation r("edge", 2);
  r.EnsureIndex(0b01);
  for (int i = 0; i < 50; ++i) r.Insert(T({i % 5, i}));
  for (int i = 0; i < 50; i += 2) r.Erase(T({i % 5, i}));
  size_t before = r.size();
  r.Compact();
  EXPECT_EQ(r.size(), before);
  EXPECT_NE(r.FindIndex(0b01), nullptr);
  std::vector<uint32_t> rows;
  r.Select(0b01, T({1}), &rows);
  for (uint32_t row : rows) {
    EXPECT_EQ(pool_.IntValue(r.row(row)[0]), 1);
  }
}

TEST_F(RelationTest, ZeroArityRelation) {
  Relation r("flag", 0);
  EXPECT_TRUE(r.empty());
  EXPECT_TRUE(r.Insert(Tuple{}));
  EXPECT_FALSE(r.Insert(Tuple{}));  // only one possible tuple
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Erase(Tuple{}));
  EXPECT_TRUE(r.empty());
}

TEST_F(RelationTest, ZeroArityCopyCompactSnapshot) {
  Relation a("flag", 0), b("copy", 0);
  a.Insert(Tuple{});
  b.CopyFrom(a);
  EXPECT_EQ(b.size(), 1u);
  b.Compact();
  EXPECT_TRUE(b.Contains(Tuple{}));
  auto snap = b.Snapshot(pool_);
  EXPECT_EQ(snap->size(), 1u);
  EXPECT_TRUE(snap->Contains(pool_, Tuple{}));
}

TEST_F(RelationTest, RowsAcrossChunkBoundaries) {
  // TupleArena chunks hold 4096 rows; cross several boundaries and check
  // every row reads back exactly, including after erases near the seams.
  constexpr int kN = 3 * 4096 + 37;
  Relation r("big", 2);
  for (int i = 0; i < kN; ++i) r.Insert(T({i, i + 1}));
  EXPECT_EQ(r.size(), static_cast<size_t>(kN));
  for (int i : {0, 4095, 4096, 4097, 8191, 8192, kN - 1}) {
    RowView row = r.row(static_cast<uint32_t>(i));
    EXPECT_EQ(pool_.IntValue(row[0]), i);
    EXPECT_EQ(pool_.IntValue(row[1]), i + 1);
  }
  r.Erase(T({4095, 4096}));
  r.Erase(T({4096, 4097}));
  EXPECT_EQ(r.size(), static_cast<size_t>(kN - 2));
  EXPECT_TRUE(r.Contains(T({4094, 4095})));
  EXPECT_FALSE(r.Contains(T({4096, 4097})));
  EXPECT_GT(r.arena_bytes(), 0u);
}

TEST_F(RelationTest, SnapshotIdenticalAfterCompact) {
  Relation r("p", 2);
  for (int i = 0; i < 200; ++i) r.Insert(T({i % 17, i}));
  for (int i = 0; i < 200; i += 3) r.Erase(T({i % 17, i}));
  std::vector<Tuple> before = r.SortedTuples(pool_);
  auto snap_before = r.Snapshot(pool_);
  r.Compact();
  // Compact bumps the version (row ids changed), so a fresh snapshot is
  // taken — but its contents must be byte-identical.
  auto snap_after = r.Snapshot(pool_);
  EXPECT_NE(snap_before.get(), snap_after.get());
  EXPECT_EQ(snap_before->tuples, snap_after->tuples);
  EXPECT_EQ(r.SortedTuples(pool_), before);
}

TEST_F(RelationTest, SortedTuplesIndependentOfInsertionOrder) {
  Relation fwd("f", 2), rev("r", 2);
  for (int i = 0; i < 64; ++i) fwd.Insert(T({i % 8, i}));
  for (int i = 63; i >= 0; --i) rev.Insert(T({i % 8, i}));
  EXPECT_EQ(fwd.SortedTuples(pool_), rev.SortedTuples(pool_));
}

TEST_F(RelationTest, DedupProbeCounterAdvances) {
  Relation r("p", 1);
  r.Insert(T({1}));
  uint64_t before = r.counters().dedup_probes;
  r.Contains(T({1}));
  r.Insert(T({1}));  // duplicate probe
  EXPECT_GT(r.counters().dedup_probes, before);
}

// --- NDV statistics under churn (the cost-model staleness fix) -------------

TEST_F(RelationTest, NdvConvergesAfterChurn) {
  // Regression: insert many distinct values, erase them all, re-insert a
  // handful of distinct values. Linear-counting sketches cannot un-observe,
  // so before erase-debt-triggered rebuilds the estimate stayed saturated
  // near the historical 2000 and the planner ordered joins off a relation
  // it believed three orders of magnitude bigger than it was.
  Relation r("churn", 2);
  for (int i = 0; i < 2000; ++i) r.Insert(T({i, i}));
  for (int i = 0; i < 2000; ++i) r.Erase(T({i, i}));
  for (int i = 0; i < 2000; ++i) r.Insert(T({i % 5, i}));

  CardEstimate est = r.stats().Estimate();
  ASSERT_EQ(est.ndv.size(), 2u);
  EXPECT_EQ(est.rows, 2000.0);
  // Column 0 really holds 5 distinct values; a stale sketch reports ~2000.
  EXPECT_LE(est.ndv[0], 16.0) << "stale NDV survived churn";
  EXPECT_GE(est.ndv[0], 1.0);
  EXPECT_GT(r.counters().stats_rebuilds, 0u);
}

TEST_F(RelationTest, NdvRebuildTriggersAtHalfLiveRows) {
  Relation r("half", 1);
  for (int i = 0; i < 100; ++i) r.Insert(T({i}));
  // Erase 33: debt 33, live 67 -> 66 <= 67, below threshold, no rebuild.
  for (int i = 0; i < 33; ++i) r.Erase(T({i}));
  EXPECT_EQ(r.counters().stats_rebuilds, 0u);
  EXPECT_EQ(r.stats().erased_since_rebuild(), 33u);
  // One more: debt 34, live 66 -> 68 > 66 trips the rebuild.
  r.Erase(T({33}));
  EXPECT_EQ(r.counters().stats_rebuilds, 1u);
  EXPECT_EQ(r.stats().erased_since_rebuild(), 0u);
  // The rebuilt sketch reflects only live values.
  CardEstimate est = r.stats().Estimate();
  EXPECT_EQ(est.rows, 66.0);
  EXPECT_LE(est.ndv[0], 80.0);
}

TEST_F(RelationTest, CompactRebuildsSketchesExactly) {
  Relation r("cmp", 1);
  for (int i = 0; i < 40; ++i) r.Insert(T({i}));
  // Ten erases: below the rebuild threshold, debt stays.
  for (int i = 0; i < 10; ++i) r.Erase(T({i}));
  EXPECT_EQ(r.stats().erased_since_rebuild(), 10u);
  r.Compact();
  EXPECT_EQ(r.stats().erased_since_rebuild(), 0u);
  CardEstimate est = r.stats().Estimate();
  EXPECT_EQ(est.rows, 30.0);
  EXPECT_LE(est.ndv[0], 40.0);
}

TEST_F(RelationTest, ClearResetsRebuildCounters) {
  Relation r("clr", 1);
  for (int i = 0; i < 10; ++i) r.Insert(T({i}));
  for (int i = 0; i < 3; ++i) r.Erase(T({i}));
  EXPECT_GT(r.stats().erased_since_rebuild(), 0u);
  r.Clear();
  EXPECT_EQ(r.stats().rows(), 0u);
  EXPECT_EQ(r.stats().erased_since_rebuild(), 0u);
  CardEstimate est = r.stats().Estimate();
  EXPECT_EQ(est.rows, 0.0);
}

// --- Stats maintenance across the bulk-copy fast paths ----------------------

/// Property: after CopyFrom — whichever path it took — the destination's
/// statistics match what row-by-row insertion of the same tuples yields.
TEST_F(RelationTest, CopyFromFastPathPreservesStats) {
  // Fast path: src has no dead rows.
  Relation src("src", 2);
  for (int i = 0; i < 500; ++i) src.Insert(T({i % 7, i}));
  ASSERT_EQ(src.num_rows(), src.size());  // fast-path precondition

  Relation fast("fast", 2);
  fast.CopyFrom(src);
  Relation slow("slow", 2);
  for (RowView t : src) slow.Insert(t);

  CardEstimate a = fast.stats().Estimate();
  CardEstimate b = slow.stats().Estimate();
  ASSERT_EQ(a.ndv.size(), b.ndv.size());
  EXPECT_EQ(a.rows, b.rows);
  for (size_t c = 0; c < a.ndv.size(); ++c) {
    EXPECT_DOUBLE_EQ(a.ndv[c], b.ndv[c]) << "column " << c;
  }
  EXPECT_EQ(fast.stats().erased_since_rebuild(), 0u);
}

TEST_F(RelationTest, CopyFromSlowPathPreservesStats) {
  // Slow path: a dead row in src forces per-row insertion; the copy must
  // observe only live rows (and inherit no erase debt).
  Relation src("src", 2);
  for (int i = 0; i < 200; ++i) src.Insert(T({i % 7, i}));
  src.Erase(T({3, 3}));
  ASSERT_NE(src.num_rows(), src.size());

  Relation dst("dst", 2);
  dst.CopyFrom(src);
  EXPECT_EQ(dst.size(), src.size());
  EXPECT_EQ(dst.stats().rows(), src.size());
  EXPECT_EQ(dst.stats().erased_since_rebuild(), 0u);

  Relation ref("ref", 2);
  for (RowView t : src) ref.Insert(t);
  CardEstimate a = dst.stats().Estimate();
  CardEstimate b = ref.stats().Estimate();
  for (size_t c = 0; c < a.ndv.size(); ++c) {
    EXPECT_DOUBLE_EQ(a.ndv[c], b.ndv[c]) << "column " << c;
  }
}

TEST_F(RelationTest, UnionDiffMaintainsStatsIncrementally) {
  // UnionDiff inserts through the normal path, so stats must equal the
  // row-by-row reference on destination, and the delta must carry stats
  // for exactly the newly added tuples.
  Relation dst("dst", 1);
  for (int i = 0; i < 50; ++i) dst.Insert(T({i}));
  Relation src("src", 1);
  for (int i = 25; i < 100; ++i) src.Insert(T({i}));

  Relation delta("delta", 1);
  size_t added = dst.UnionDiff(src, &delta);
  EXPECT_EQ(added, 50u);
  EXPECT_EQ(dst.stats().rows(), 100u);
  EXPECT_EQ(delta.stats().rows(), 50u);

  Relation ref("ref", 1);
  for (int i = 0; i < 100; ++i) ref.Insert(T({i}));
  EXPECT_DOUBLE_EQ(dst.stats().Estimate().ndv[0],
                   ref.stats().Estimate().ndv[0]);
}

}  // namespace
}  // namespace gluenail
