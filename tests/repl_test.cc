/// Tests for the interactive shell (src/api/repl.h), driven through
/// injected streams.

#include "src/api/repl.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace gluenail {
namespace {

class ReplTest : public ::testing::Test {
 protected:
  /// Runs a whole scripted session; returns the output.
  std::string Session(std::string_view script) {
    Engine engine;
    std::istringstream in{std::string(script)};
    std::ostringstream out;
    ReplOptions opts;
    opts.prompt = false;
    Repl repl(&engine, &in, &out, opts);
    Status s = repl.Run();
    EXPECT_TRUE(s.ok()) << s;
    return out.str();
  }
};

TEST_F(ReplTest, FactsAndQueries) {
  std::string out = Session(
      "edge(1,2).\n"
      "edge(2,3).\n"
      "?- edge(1, X).\n");
  EXPECT_NE(out.find("X = 2"), std::string::npos) << out;
  EXPECT_NE(out.find("1 answer(s)"), std::string::npos) << out;
}

TEST_F(ReplTest, StatementsExecute) {
  std::string out = Session(
      "n(1).\n"
      "n(2).\n"
      "doubled(Y) := n(X) & Y = X * 2.\n"
      "?- doubled(Y).\n");
  EXPECT_NE(out.find("Y = 2"), std::string::npos) << out;
  EXPECT_NE(out.find("Y = 4"), std::string::npos) << out;
}

TEST_F(ReplTest, GroundQueriesSayYesNo) {
  std::string out = Session(
      "p(1).\n"
      "?- p(1).\n"
      "?- p(9).\n");
  EXPECT_NE(out.find("yes"), std::string::npos) << out;
  EXPECT_NE(out.find("no"), std::string::npos) << out;
}

TEST_F(ReplTest, MultiLineInputAccumulates) {
  std::string out = Session(
      "big(X,\n"
      "    Y) :=\n"
      "  s(X) &\n"
      "  t(Y).\n"
      "?- big(A, B).\n");
  EXPECT_NE(out.find("no"), std::string::npos) << out;
}

TEST_F(ReplTest, ErrorsAreReportedAndSessionContinues) {
  std::string out = Session(
      "p(X) := !q(X).\n"
      "p(1).\n"
      "?- p(X).\n");
  EXPECT_NE(out.find("compile error"), std::string::npos) << out;
  EXPECT_NE(out.find("X = 1"), std::string::npos) << out;
}

TEST_F(ReplTest, HelpAndUnknownCommand) {
  std::string out = Session(":help\n:bogus\n");
  EXPECT_NE(out.find("commands:"), std::string::npos);
  EXPECT_NE(out.find("unknown command"), std::string::npos);
}

TEST_F(ReplTest, QuitStopsProcessing) {
  std::string out = Session(
      "p(1).\n"
      ":quit\n"
      "?- p(X).\n");  // never reached
  EXPECT_EQ(out.find("X = 1"), std::string::npos) << out;
}

TEST_F(ReplTest, RelationsAndStats) {
  std::string out = Session(
      "edge(1,2).\n"
      "edge(2,3).\n"
      ":relations\n"
      ":stats\n");
  EXPECT_NE(out.find("edge/2  (2 tuples)"), std::string::npos) << out;
  EXPECT_NE(out.find("statements"), std::string::npos) << out;
}

TEST_F(ReplTest, ExplainCommand) {
  std::string out = Session(":explain p(X) := q(X) & X > 1.\n");
  EXPECT_NE(out.find("match edb q"), std::string::npos) << out;
  EXPECT_NE(out.find("head: :="), std::string::npos) << out;
}

TEST_F(ReplTest, SaveAndLoadEdb) {
  const std::string path = testing::TempDir() + "/repl_edb.facts";
  std::string out1 = Session(StrCat(
      "edge(7,8).\n"
      ":save ", path, "\n"));
  EXPECT_NE(out1.find("edb saved"), std::string::npos) << out1;
  std::string out2 = Session(StrCat(
      ":edb ", path, "\n"
      "?- edge(7, X).\n"));
  EXPECT_NE(out2.find("X = 8"), std::string::npos) << out2;
}

TEST_F(ReplTest, LoadProgramFile) {
  const std::string path = testing::TempDir() + "/repl_prog.gn";
  {
    std::ofstream f(path);
    f << "module kb;\nedb e(X,Y);\npath(X,Y) :- e(X,Y).\n"
         "path(X,Z) :- path(X,Y) & e(Y,Z).\ne(1,2). e(2,3).\nend\n";
  }
  std::string out = Session(StrCat(
      ":load ", path, "\n"
      "?- path(1, X).\n"));
  EXPECT_NE(out.find("loaded:"), std::string::npos) << out;
  EXPECT_NE(out.find("X = 3"), std::string::npos) << out;
}

TEST_F(ReplTest, RepeatLoopStatement) {
  std::string out = Session(
      "n(1).\n"
      "repeat n(Y) += n(X) & Y = X * 2 & Y < 50. "
      "until unchanged(n(_));\n"
      "?- n(X).\n");
  EXPECT_NE(out.find("6 answer(s)"), std::string::npos) << out;  // 1..32
}

TEST_F(ReplTest, QuotedFactWithOperatorsInsideIsStillAFact) {
  std::string out = Session(
      "note('a := b').\n"
      "?- note(X).\n");
  EXPECT_NE(out.find("X = 'a := b'"), std::string::npos) << out;
}

TEST_F(ReplTest, MetricsCommandDumpsBothFormats) {
  std::string out = Session(
      "p(1).\n"
      "?- p(X).\n"
      ":metrics\n"
      ":metrics json\n");
  EXPECT_NE(out.find("# HELP gluenail_queries_total"), std::string::npos)
      << out;
  EXPECT_NE(out.find("\"name\":\"gluenail_queries_total\""),
            std::string::npos)
      << out;
}

TEST_F(ReplTest, TraceLastShowsTheQueryJustRun) {
  // REPL evaluation always traces, so no opt-in is needed.
  std::string out = Session(
      "edge(1,2).\n"
      "?- edge(X,Y).\n"
      ":trace last\n"
      ":trace chrome\n");
  EXPECT_NE(out.find("trace: edge(X,Y)"), std::string::npos) << out;
  EXPECT_NE(out.find("query:execute"), std::string::npos) << out;
  EXPECT_NE(out.find("\"traceEvents\""), std::string::npos) << out;
}

TEST_F(ReplTest, TraceBeforeAnyQueryExplainsItself) {
  std::string out = Session(":trace last\n");
  EXPECT_NE(out.find("no trace recorded yet"), std::string::npos) << out;
}

}  // namespace
}  // namespace gluenail
