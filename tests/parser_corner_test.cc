/// Additional grammar corners and negative parser cases, plus Glue
/// negation over NAIL! predicates end-to-end.

#include <gtest/gtest.h>

#include "src/api/engine.h"
#include "src/parser/parser.h"

namespace gluenail {
namespace {

TEST(ParserCornerTest, SignatureErrors) {
  EXPECT_FALSE(ParseModule("module m; export f(X:Y:Z); end").ok());
  EXPECT_FALSE(ParseModule("module m; proc f(X:Y:Z) end end").ok());
  EXPECT_FALSE(ParseModule("module m; proc f(1:Y) end end").ok());
  EXPECT_FALSE(ParseStatement("p(K,V) +=[] q(K,V).").ok());
  EXPECT_FALSE(ParseStatement("p(K,V) +=[1] q(K,V).").ok());
}

TEST(ParserCornerTest, EmptyBoundAndFreeSides) {
  // f(:) — zero bound, zero free.
  Result<ast::Module> m =
      ParseModule("module m; proc f(:) return(:) := true. end end");
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_EQ(m->procedures[0].bound_arity, 0u);
  EXPECT_EQ(m->procedures[0].free_arity, 0u);
}

TEST(ParserCornerTest, ColonOnlyInFinalHeadSuffix) {
  EXPECT_FALSE(ParseStatement("f(X:)(Y) := q(X,Y).").ok());
}

TEST(ParserCornerTest, RepeatErrors) {
  EXPECT_FALSE(ParseStatement("repeat p(X) += q(X).").ok());  // no until
  EXPECT_FALSE(
      ParseStatement("repeat p(X) += q(X). until ;").ok());  // empty cond
  EXPECT_FALSE(ParseStatement(
                   "repeat p(X) += q(X). until {unchanged(p(_))")
                   .ok());  // unclosed brace
}

TEST(ParserCornerTest, RuleBodySubgoalKinds) {
  // Rules may contain comparisons and negation but the parser accepts
  // updates too (the rule-graph rejects them later) — verify the split.
  Result<ast::NailRule> r =
      ParseRule("p(X) :- e(X) & !f(X) & X > 1 & X mod 2 = 0.");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->body.size(), 4u);
}

TEST(ParserCornerTest, NestedParensAndPrecedence) {
  Result<ast::Term> t = ParseTermText("((A))");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->IsVariable());
  t = ParseTermText("A - B - C");  // left associative
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->functor().name, "-");
  EXPECT_EQ(t->arg(0).functor().name, "-");
}

TEST(ParserCornerTest, QuotedKeywordsAreSymbols) {
  Result<ast::Statement> s =
      ParseStatement("p(X) := q(X) & X = 'end'.");
  ASSERT_TRUE(s.ok()) << s.status();
}

TEST(ParserCornerTest, CommentsInsideStatements) {
  Result<ast::Statement> s = ParseStatement(
      "p(X) := % first\n q(X) & % second\n X > 1.");
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(s->assignment().body.size(), 2u);
}

TEST(GlueNegationOverNailTest, NegatedNailPredicate) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(R"(
module kb;
edb edge(X,Y), node(X);
path(X,Y) :- edge(X,Y).
path(X,Z) :- path(X,Y) & edge(Y,Z).
node(1). node(2). node(3). node(4).
edge(1,2). edge(2,3).
end
)").ok());
  // Glue negation over the NAIL! view.
  ASSERT_TRUE(engine.ExecuteStatement(
                  "dead_end(X) := node(X) & !path(X, _).")
                  .ok());
  Result<Engine::QueryResult> r = engine.Query("dead_end(X)");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 2u);  // 3 and 4
}

TEST(GlueNegationOverNailTest, NegatedParameterizedInstance) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(R"(
module kb;
edb attends(S,C), person(P);
students(C)(S) :- attends(S, C).
person(ann). person(bo).
attends(ann, cs99).
end
)").ok());
  ASSERT_TRUE(engine.ExecuteStatement(
                  "slacker(P) := person(P) & !students(cs99)(P).")
                  .ok());
  Result<Engine::QueryResult> r = engine.Query("slacker(P)");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(engine.terms().SymbolName(r->rows[0][0]), "bo");
}

TEST(GlueNegationOverNailTest, UnchangedOverNailIsCompileError) {
  Engine engine;
  Status s = engine.LoadProgram(R"(
module kb;
edb e(X);
p(X) :- e(X).
export f(:);
proc f(:)
  repeat
    e(1) += true.
  until unchanged(p(_));
  return(:) := true.
end
end
)");
  EXPECT_TRUE(s.IsCompileError()) << s;
}

}  // namespace
}  // namespace gluenail
