/// Differential property tests: the materialized and pipelined executors,
/// with and without early duplicate elimination, all index policies, and
/// both planner cost models must agree on every program — the §9 and
/// join-order trade-offs are performance-only.

#include <gtest/gtest.h>

#include <random>

#include "src/api/engine.h"

namespace gluenail {
namespace {

struct Config {
  ExecOptions::Strategy strategy;
  bool dedup;
  IndexPolicy policy;
  NailMode nail;
  PlannerOptions::CostModel cost = PlannerOptions::CostModel::kStatistics;
};

std::vector<Config> AllConfigs() {
  std::vector<Config> out;
  for (auto strategy : {ExecOptions::Strategy::kMaterialized,
                        ExecOptions::Strategy::kPipelined}) {
    for (bool dedup : {true, false}) {
      for (auto policy : {IndexPolicy::kNeverIndex, IndexPolicy::kAdaptive,
                          IndexPolicy::kAlwaysIndex}) {
        for (auto cost : {PlannerOptions::CostModel::kStatistics,
                          PlannerOptions::CostModel::kSyntactic}) {
          out.push_back(
              Config{strategy, dedup, policy, NailMode::kDirect, cost});
        }
      }
    }
  }
  out.push_back(Config{ExecOptions::Strategy::kPipelined, true,
                       IndexPolicy::kAdaptive, NailMode::kCompiledGlue});
  out.push_back(Config{ExecOptions::Strategy::kPipelined, true,
                       IndexPolicy::kAdaptive, NailMode::kNaive});
  out.push_back(Config{ExecOptions::Strategy::kPipelined, true,
                       IndexPolicy::kAdaptive, NailMode::kNaive,
                       PlannerOptions::CostModel::kSyntactic});
  return out;
}

std::unique_ptr<Engine> MakeEngine(const Config& c) {
  EngineOptions opts;
  opts.exec.strategy = c.strategy;
  opts.exec.dedup_at_breaks = c.dedup;
  opts.index_policy = c.policy;
  opts.nail_mode = c.nail;
  opts.planner.cost_model = c.cost;
  return std::make_unique<Engine>(opts);
}

std::string Render(Engine* engine, const Engine::QueryResult& r) {
  std::string out;
  for (size_t i = 0; i < r.rows.size(); ++i) {
    if (i != 0) out += ";";
    out += TupleToString(engine->terms(), r.rows[i]);
  }
  return out;
}

/// Runs the same scenario under every config and expects identical
/// answers.
void ExpectAllConfigsAgree(
    const std::function<void(Engine*)>& setup,
    const std::vector<std::string>& goals) {
  std::vector<std::string> reference;
  bool first = true;
  for (const Config& c : AllConfigs()) {
    std::unique_ptr<Engine> engine = MakeEngine(c);
    setup(engine.get());
    std::vector<std::string> answers;
    for (const std::string& g : goals) {
      Result<Engine::QueryResult> r = engine->Query(g);
      ASSERT_TRUE(r.ok()) << g << ": " << r.status();
      answers.push_back(Render(engine.get(), *r));
    }
    if (first) {
      reference = answers;
      first = false;
    } else {
      EXPECT_EQ(answers, reference)
          << "strategy=" << static_cast<int>(c.strategy)
          << " dedup=" << c.dedup
          << " policy=" << static_cast<int>(c.policy)
          << " nail=" << static_cast<int>(c.nail)
          << " cost=" << static_cast<int>(c.cost);
    }
  }
}

TEST(StrategiesPropertyTest, RandomGraphReachability) {
  std::mt19937 rng(20260707);
  for (int trial = 0; trial < 5; ++trial) {
    int n = 12 + trial * 7;
    std::uniform_int_distribution<int> node(0, n - 1);
    std::vector<std::pair<int, int>> edges;
    for (int i = 0; i < n * 2; ++i) {
      edges.emplace_back(node(rng), node(rng));
    }
    ExpectAllConfigsAgree(
        [&](Engine* e) {
          std::string src =
              "module kb;\nedb edge(X,Y);\n"
              "path(X,Y) :- edge(X,Y).\n"
              "path(X,Z) :- path(X,Y) & edge(Y,Z).\n";
          for (auto [a, b] : edges) {
            src += StrCat("edge(", a, ",", b, ").\n");
          }
          src += "end\n";
          ASSERT_TRUE(e->LoadProgram(src).ok());
        },
        {"path(0,Y)", "path(X,Y)", "path(X,0)"});
  }
}

TEST(StrategiesPropertyTest, JoinsWithDuplicateAmplification) {
  std::mt19937 rng(42);
  for (int trial = 0; trial < 4; ++trial) {
    std::uniform_int_distribution<int> v(0, 5);
    std::vector<std::array<int, 3>> s_facts, t_facts;
    for (int i = 0; i < 40; ++i) {
      s_facts.push_back({v(rng), v(rng), v(rng)});
      t_facts.push_back({v(rng), v(rng), v(rng)});
    }
    ExpectAllConfigsAgree(
        [&](Engine* e) {
          for (auto& f : s_facts) {
            ASSERT_TRUE(
                e->AddFact(StrCat("s(", f[0], ",", f[1], ",", f[2], ")."))
                    .ok());
          }
          for (auto& f : t_facts) {
            ASSERT_TRUE(
                e->AddFact(StrCat("t(", f[0], ",", f[1], ",", f[2], ")."))
                    .ok());
          }
          ASSERT_TRUE(
              e->ExecuteStatement("j(A, D) := s(A, B, _) & t(B, _, D).")
                  .ok());
        },
        {"j(A, D)"});
  }
}

TEST(StrategiesPropertyTest, GroupedAggregatesOverRandomData) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 4; ++trial) {
    std::uniform_int_distribution<int> g(0, 3), x(1, 9);
    std::vector<std::pair<int, int>> facts;
    for (int i = 0; i < 30; ++i) facts.emplace_back(g(rng), x(rng));
    ExpectAllConfigsAgree(
        [&](Engine* e) {
          for (auto& [grp, val] : facts) {
            ASSERT_TRUE(
                e->AddFact(StrCat("m(", grp, ",", val, ",", trial * 1000 + val,
                                  ")."))
                    .ok());
          }
          ASSERT_TRUE(e->ExecuteStatement(
                           "agg(G, S, C) := m(G, V, _) & group_by(G) & "
                           "S = sum(V) & C = count(V).")
                          .ok());
        },
        {"agg(G, S, C)"});
  }
}

TEST(StrategiesPropertyTest, ThreeDeepKeyedJoinChain) {
  // Regression shape for the nested-scratch clobbering bug: three keyed
  // selections nest inside one pipeline.
  std::mt19937 rng(99);
  std::uniform_int_distribution<int> v(0, 7);
  std::vector<std::array<int, 2>> a, b, c;
  for (int i = 0; i < 30; ++i) {
    a.push_back({v(rng), v(rng)});
    b.push_back({v(rng), v(rng)});
    c.push_back({v(rng), v(rng)});
  }
  ExpectAllConfigsAgree(
      [&](Engine* e) {
        for (auto& f : a) {
          ASSERT_TRUE(e->AddFact(StrCat("a(", f[0], ",", f[1], ").")).ok());
        }
        for (auto& f : b) {
          ASSERT_TRUE(e->AddFact(StrCat("b(", f[0], ",", f[1], ").")).ok());
        }
        for (auto& f : c) {
          ASSERT_TRUE(e->AddFact(StrCat("c(", f[0], ",", f[1], ").")).ok());
        }
        ASSERT_TRUE(e->ExecuteStatement(
                         "chain(W, Z) := a(W, X) & b(X, Y) & c(Y, Z).")
                        .ok());
      },
      {"chain(W, Z)"});
}

TEST(StrategiesPropertyTest, NegationAndArithmetic) {
  std::mt19937 rng(5);
  std::uniform_int_distribution<int> v(0, 20);
  std::vector<int> xs;
  for (int i = 0; i < 25; ++i) xs.push_back(v(rng));
  ExpectAllConfigsAgree(
      [&](Engine* e) {
        for (int x : xs) {
          ASSERT_TRUE(e->AddFact(StrCat("n(", x, ").")).ok());
        }
        ASSERT_TRUE(e->AddFact("banned(4).").ok());
        ASSERT_TRUE(e->AddFact("banned(8).").ok());
        ASSERT_TRUE(e->ExecuteStatement(
                         "keep(X, Y) := n(X) & !banned(X) & Y = X mod 5 & "
                         "Y != 2.")
                        .ok());
      },
      {"keep(X, Y)"});
}

}  // namespace
}  // namespace gluenail
