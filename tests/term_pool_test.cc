#include "src/term/term_pool.h"

#include <gtest/gtest.h>

#include <vector>

namespace gluenail {
namespace {

class TermPoolTest : public ::testing::Test {
 protected:
  TermPool pool_;
};

TEST_F(TermPoolTest, IntsAreInterned) {
  TermId a = pool_.MakeInt(42);
  TermId b = pool_.MakeInt(42);
  TermId c = pool_.MakeInt(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(pool_.IsInt(a));
  EXPECT_EQ(pool_.IntValue(a), 42);
}

TEST_F(TermPoolTest, FloatsAreInterned) {
  TermId a = pool_.MakeFloat(2.5);
  TermId b = pool_.MakeFloat(2.5);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(pool_.IsFloat(a));
  EXPECT_DOUBLE_EQ(pool_.FloatValue(a), 2.5);
}

TEST_F(TermPoolTest, IntAndFloatWithSameValueAreDistinctTerms) {
  EXPECT_NE(pool_.MakeInt(1), pool_.MakeFloat(1.0));
}

TEST_F(TermPoolTest, SymbolsAreInterned) {
  TermId a = pool_.MakeSymbol("wilson");
  TermId b = pool_.MakeSymbol("wilson");
  TermId c = pool_.MakeSymbol("green");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(pool_.SymbolName(a), "wilson");
}

TEST_F(TermPoolTest, AtomsAndStringsAreTheSameThing) {
  // Paper §2: "In Glue there is no difference between atoms and strings."
  EXPECT_EQ(pool_.MakeSymbol("hello world"), pool_.MakeSymbol("hello world"));
}

TEST_F(TermPoolTest, CompoundsAreInterned) {
  TermId x = pool_.MakeInt(1);
  TermId y = pool_.MakeInt(2);
  std::vector<TermId> args{x, y};
  TermId a = pool_.MakeCompound("p", args);
  TermId b = pool_.MakeCompound("p", args);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(pool_.IsCompound(a));
  EXPECT_EQ(pool_.Functor(a), pool_.MakeSymbol("p"));
  ASSERT_EQ(pool_.Arity(a), 2u);
  EXPECT_EQ(pool_.Args(a)[0], x);
  EXPECT_EQ(pool_.Args(a)[1], y);
}

TEST_F(TermPoolTest, CompoundsDifferingInArgsAreDistinct) {
  TermId x = pool_.MakeInt(1);
  TermId y = pool_.MakeInt(2);
  std::vector<TermId> a1{x, y}, a2{y, x};
  EXPECT_NE(pool_.MakeCompound("p", a1), pool_.MakeCompound("p", a2));
}

TEST_F(TermPoolTest, HiLogCompoundFunctor) {
  // students(cs99)(wilson) — the functor is itself a compound term.
  TermId cs99 = pool_.MakeSymbol("cs99");
  std::vector<TermId> inner{cs99};
  TermId students_cs99 = pool_.MakeCompound("students", inner);
  TermId wilson = pool_.MakeSymbol("wilson");
  std::vector<TermId> outer{wilson};
  TermId fact = pool_.MakeCompound(students_cs99, outer);
  EXPECT_EQ(pool_.Functor(fact), students_cs99);
  EXPECT_TRUE(pool_.IsCompound(pool_.Functor(fact)));
  EXPECT_EQ(pool_.ToString(fact), "students(cs99)(wilson)");
}

TEST_F(TermPoolTest, DeepNestingSurvives) {
  TermId t = pool_.MakeInt(0);
  for (int i = 0; i < 1000; ++i) {
    std::vector<TermId> args{t};
    t = pool_.MakeCompound("f", args);
  }
  // Unwind and verify.
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(pool_.IsCompound(t));
    ASSERT_EQ(pool_.Arity(t), 1u);
    t = pool_.Args(t)[0];
  }
  EXPECT_EQ(pool_.IntValue(t), 0);
}

TEST_F(TermPoolTest, ManyCompoundsKeepStableArgStorage) {
  // Forces many arena chunks; earlier terms must stay readable.
  std::vector<TermId> made;
  for (int i = 0; i < 20000; ++i) {
    std::vector<TermId> args{pool_.MakeInt(i), pool_.MakeInt(i + 1)};
    made.push_back(pool_.MakeCompound("edge", args));
  }
  for (int i = 0; i < 20000; ++i) {
    ASSERT_EQ(pool_.IntValue(pool_.Args(made[i])[0]), i);
    ASSERT_EQ(pool_.IntValue(pool_.Args(made[i])[1]), i + 1);
  }
}

TEST_F(TermPoolTest, CompareNumbersByValueAcrossKinds) {
  TermId i1 = pool_.MakeInt(1);
  TermId f2 = pool_.MakeFloat(2.0);
  TermId i3 = pool_.MakeInt(3);
  EXPECT_LT(pool_.Compare(i1, f2), 0);
  EXPECT_LT(pool_.Compare(f2, i3), 0);
  EXPECT_GT(pool_.Compare(i3, i1), 0);
  EXPECT_EQ(pool_.Compare(i1, i1), 0);
  // Tie on value: int sorts before float.
  EXPECT_LT(pool_.Compare(pool_.MakeInt(2), f2), 0);
}

TEST_F(TermPoolTest, CompareKindsNumbersSymbolsCompounds) {
  TermId n = pool_.MakeInt(999);
  TermId s = pool_.MakeSymbol("aardvark");
  std::vector<TermId> args{n};
  TermId c = pool_.MakeCompound("f", args);
  EXPECT_LT(pool_.Compare(n, s), 0);
  EXPECT_LT(pool_.Compare(s, c), 0);
  EXPECT_GT(pool_.Compare(c, n), 0);
}

TEST_F(TermPoolTest, CompareSymbolsLexicographically) {
  EXPECT_LT(pool_.Compare(pool_.MakeSymbol("abc"), pool_.MakeSymbol("abd")),
            0);
  EXPECT_LT(pool_.Compare(pool_.MakeSymbol("ab"), pool_.MakeSymbol("abc")),
            0);
}

TEST_F(TermPoolTest, CompareCompoundsByArityThenFunctorThenArgs) {
  TermId one = pool_.MakeInt(1);
  TermId two = pool_.MakeInt(2);
  std::vector<TermId> a1{one}, a2{one, two}, a3{two};
  TermId f1 = pool_.MakeCompound("f", a1);
  TermId f12 = pool_.MakeCompound("f", a2);
  TermId g1 = pool_.MakeCompound("g", a1);
  TermId f2 = pool_.MakeCompound("f", a3);
  EXPECT_LT(pool_.Compare(f1, f12), 0);   // smaller arity first
  EXPECT_LT(pool_.Compare(f1, g1), 0);    // functor order
  EXPECT_LT(pool_.Compare(f1, f2), 0);    // arg order
}

TEST_F(TermPoolTest, PrintingAtoms) {
  EXPECT_EQ(pool_.ToString(pool_.MakeSymbol("abc")), "abc");
  EXPECT_EQ(pool_.ToString(pool_.MakeSymbol("aB_9")), "aB_9");
  // Not a plain lowercase identifier -> quoted.
  EXPECT_EQ(pool_.ToString(pool_.MakeSymbol("Hello")), "'Hello'");
  EXPECT_EQ(pool_.ToString(pool_.MakeSymbol("two words")), "'two words'");
  EXPECT_EQ(pool_.ToString(pool_.MakeSymbol("")), "''");
  EXPECT_EQ(pool_.ToString(pool_.MakeSymbol("it's")), "'it\\'s'");
}

TEST_F(TermPoolTest, PrintingNumbers) {
  EXPECT_EQ(pool_.ToString(pool_.MakeInt(-17)), "-17");
  EXPECT_EQ(pool_.ToString(pool_.MakeFloat(2.5)), "2.5");
  // Floats stay lexically distinct from ints.
  EXPECT_EQ(pool_.ToString(pool_.MakeFloat(1.0)), "1.0");
}

TEST_F(TermPoolTest, PrintingCompound) {
  std::vector<TermId> args{pool_.MakeInt(1), pool_.MakeSymbol("a")};
  EXPECT_EQ(pool_.ToString(pool_.MakeCompound("p", args)), "p(1,a)");
}

TEST_F(TermPoolTest, SizeCountsDistinctTerms) {
  size_t before = pool_.size();
  pool_.MakeInt(5);
  pool_.MakeInt(5);
  pool_.MakeSymbol("x");
  EXPECT_EQ(pool_.size(), before + 2);
}

}  // namespace
}  // namespace gluenail
