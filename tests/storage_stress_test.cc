/// Property/stress tests for the storage layer: a Relation must behave
/// exactly like a reference std::set under random operation sequences,
/// with indexes, compaction, uniondiff, and persistence thrown in.

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <sstream>

#include "src/storage/persistence.h"
#include "src/storage/relation.h"

namespace gluenail {
namespace {

class StorageStressTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(StorageStressTest, RelationMatchesReferenceSet) {
  TermPool pool;
  Relation rel("r", 2);
  rel.set_index_policy(IndexPolicy::kAdaptive);
  std::set<std::pair<int, int>> ref;
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> v(0, 30);
  std::uniform_int_distribution<int> op(0, 99);

  auto tup = [&pool](int a, int b) {
    return Tuple{pool.MakeInt(a), pool.MakeInt(b)};
  };

  for (int step = 0; step < 4000; ++step) {
    int a = v(rng), b = v(rng);
    int o = op(rng);
    if (o < 55) {
      bool added_rel = rel.Insert(tup(a, b));
      bool added_ref = ref.emplace(a, b).second;
      ASSERT_EQ(added_rel, added_ref) << "step " << step;
    } else if (o < 85) {
      bool erased_rel = rel.Erase(tup(a, b));
      bool erased_ref = ref.erase({a, b}) > 0;
      ASSERT_EQ(erased_rel, erased_ref) << "step " << step;
    } else if (o < 95) {
      // Keyed selection against the reference.
      std::vector<uint32_t> rows;
      rel.Select(0b01, Tuple{pool.MakeInt(a)}, &rows);
      size_t expected = 0;
      for (const auto& [x, y] : ref) {
        if (x == a) ++expected;
      }
      ASSERT_EQ(rows.size(), expected) << "step " << step;
    } else if (o < 98) {
      ASSERT_EQ(rel.Contains(tup(a, b)), ref.count({a, b}) > 0);
    } else {
      rel.Compact();
    }
    ASSERT_EQ(rel.size(), ref.size()) << "step " << step;
  }

  // Full-content comparison at the end.
  std::set<std::pair<int, int>> final_rel;
  for (RowView t : rel) {
    final_rel.emplace(static_cast<int>(pool.IntValue(t[0])),
                      static_cast<int>(pool.IntValue(t[1])));
  }
  EXPECT_EQ(final_rel, ref);
}

TEST_P(StorageStressTest, UnionDiffMatchesSetDifference) {
  TermPool pool;
  std::mt19937 rng(GetParam() * 31 + 5);
  std::uniform_int_distribution<int> v(0, 40);
  Relation acc("acc", 1), src("src", 1), delta("delta", 1);
  std::set<int> ref_acc, ref_src;
  for (int i = 0; i < 60; ++i) {
    int x = v(rng);
    acc.Insert(Tuple{pool.MakeInt(x)});
    ref_acc.insert(x);
  }
  for (int i = 0; i < 60; ++i) {
    int x = v(rng);
    src.Insert(Tuple{pool.MakeInt(x)});
    ref_src.insert(x);
  }
  size_t added = acc.UnionDiff(src, &delta);
  std::set<int> ref_delta;
  for (int x : ref_src) {
    if (ref_acc.count(x) == 0) ref_delta.insert(x);
  }
  EXPECT_EQ(added, ref_delta.size());
  EXPECT_EQ(delta.size(), ref_delta.size());
  for (int x : ref_delta) {
    EXPECT_TRUE(delta.Contains(Tuple{pool.MakeInt(x)}));
    EXPECT_TRUE(acc.Contains(Tuple{pool.MakeInt(x)}));
  }
}

TEST_P(StorageStressTest, PersistenceRoundTripRandomTerms) {
  TermPool pool;
  Database db(&pool);
  std::mt19937 rng(GetParam() * 7 + 3);
  std::uniform_int_distribution<int> kind(0, 4), small(0, 9);
  auto random_term = [&](auto&& self, int depth) -> TermId {
    switch (depth > 2 ? kind(rng) % 3 : kind(rng)) {
      case 0:
        return pool.MakeInt(small(rng) - 5);
      case 1:
        return pool.MakeFloat(small(rng) * 0.25);
      case 2:
        return pool.MakeSymbol(StrCat("sym", small(rng)));
      case 3: {
        std::vector<TermId> args{self(self, depth + 1)};
        return pool.MakeCompound(StrCat("f", small(rng)), args);
      }
      default: {
        std::vector<TermId> args{self(self, depth + 1),
                                 self(self, depth + 1)};
        return pool.MakeCompound(StrCat("g", small(rng)), args);
      }
    }
  };
  Relation* rel = db.GetOrCreate(pool.MakeSymbol("facts"), 2);
  for (int i = 0; i < 200; ++i) {
    rel->Insert(Tuple{random_term(random_term, 0),
                      random_term(random_term, 0)});
  }
  std::ostringstream out;
  ASSERT_TRUE(SaveDatabase(db, out).ok());
  TermPool pool2;
  Database db2(&pool2);
  std::istringstream in(out.str());
  ASSERT_TRUE(LoadDatabase(&db2, in).ok()) << out.str().substr(0, 400);
  Relation* rel2 = db2.Find(pool2.MakeSymbol("facts"), 2);
  ASSERT_NE(rel2, nullptr);
  EXPECT_EQ(rel2->size(), rel->size());
  // Canonical forms must agree term by term.
  std::vector<Tuple> a = rel->SortedTuples(pool);
  std::vector<Tuple> b = rel2->SortedTuples(pool2);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(TupleToString(pool, a[i]), TupleToString(pool2, b[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorageStressTest,
                         ::testing::Values(1u, 2u, 3u, 42u, 1991u));

TEST(StorageEdgeTest, IndexOnHighColumns) {
  TermPool pool;
  Relation rel("wide", 8);
  Tuple t;
  for (int c = 0; c < 8; ++c) t.push_back(pool.MakeInt(c));
  rel.Insert(t);
  rel.EnsureIndex(0b10000001);  // first and last columns
  std::vector<uint32_t> rows;
  rel.Select(0b10000001, Tuple{pool.MakeInt(0), pool.MakeInt(7)}, &rows);
  EXPECT_EQ(rows.size(), 1u);
}

TEST(StorageEdgeTest, DedupAcrossManyRows) {
  // >64k distinct rows force several dedup-table growths and span many
  // arena chunks; every duplicate must still be rejected afterwards.
  TermPool pool;
  Relation rel("big", 2);
  constexpr int kN = 70'000;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(rel.Insert(Tuple{pool.MakeInt(i / 256), pool.MakeInt(i)}));
  }
  EXPECT_EQ(rel.size(), static_cast<size_t>(kN));
  for (int i = 0; i < kN; i += 997) {
    EXPECT_FALSE(rel.Insert(Tuple{pool.MakeInt(i / 256), pool.MakeInt(i)}));
    EXPECT_TRUE(rel.Contains(Tuple{pool.MakeInt(i / 256), pool.MakeInt(i)}));
  }
  EXPECT_EQ(rel.size(), static_cast<size_t>(kN));
  EXPECT_GT(rel.counters().dedup_probes, static_cast<uint64_t>(kN));
}

TEST(StorageEdgeTest, InsertEraseSelectCompactInterleave) {
  // Regression for index/dedup consistency across Erase -> Remove ->
  // Compact under the arena layout: indexes must survive row-id
  // renumbering and tombstoned dedup slots must be recycled.
  TermPool pool;
  Relation rel("r", 2);
  rel.EnsureIndex(0b01);
  auto tup = [&pool](int a, int b) {
    return Tuple{pool.MakeInt(a), pool.MakeInt(b)};
  };
  auto check = [&](int key, size_t expected) {
    std::vector<uint32_t> rows;
    rel.Select(0b01, Tuple{pool.MakeInt(key)}, &rows);
    ASSERT_EQ(rows.size(), expected) << "key " << key;
    for (uint32_t r : rows) {
      EXPECT_EQ(pool.IntValue(rel.row(r)[0]), key);
    }
  };
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 500; ++i) rel.Insert(tup(i % 10, round * 1000 + i));
    check(3, 50u);
    check(4, 50u);
    // i % 10 preserves parity, so erasing every even i empties exactly the
    // even keys and leaves the odd keys whole.
    for (int i = 0; i < 500; i += 2) rel.Erase(tup(i % 10, round * 1000 + i));
    check(4, 0u);
    check(3, 50u);
    rel.Compact();  // renumbers row ids; index answers must not change
    check(4, 0u);
    check(3, 50u);
    for (int i = 1; i < 500; i += 2) rel.Erase(tup(i % 10, round * 1000 + i));
    check(3, 0u);
    EXPECT_TRUE(rel.empty());
    for (int i = 0; i < 500; ++i) rel.Insert(tup(i % 10, round * 1000 + i));
    check(3, 50u);
    check(4, 50u);
    // Alternate between carrying the index through Clear-rebuild and
    // compacting a fully-live relation.
    if (round % 2 == 1) {
      rel.Clear();
      rel.EnsureIndex(0b01);
    } else {
      rel.Compact();
      for (int i = 0; i < 500; ++i) rel.Erase(tup(i % 10, round * 1000 + i));
      EXPECT_TRUE(rel.empty());
    }
  }
}

TEST(StorageEdgeTest, ManyIndexesStayConsistent) {
  TermPool pool;
  Relation rel("r", 3);
  for (ColumnMask m : {0b001u, 0b010u, 0b100u, 0b011u, 0b111u}) {
    rel.EnsureIndex(m);
  }
  for (int i = 0; i < 300; ++i) {
    rel.Insert(Tuple{pool.MakeInt(i % 3), pool.MakeInt(i % 5),
                     pool.MakeInt(i)});
  }
  for (int i = 0; i < 300; i += 2) {
    rel.Erase(Tuple{pool.MakeInt(i % 3), pool.MakeInt(i % 5),
                    pool.MakeInt(i)});
  }
  std::vector<uint32_t> rows;
  rel.Select(0b011, Tuple{pool.MakeInt(1), pool.MakeInt(1)}, &rows);
  for (uint32_t r : rows) {
    EXPECT_EQ(pool.IntValue(rel.row(r)[0]), 1);
    EXPECT_EQ(pool.IntValue(rel.row(r)[1]), 1);
    EXPECT_EQ(pool.IntValue(rel.row(r)[2]) % 2, 1);
  }
}

}  // namespace
}  // namespace gluenail
