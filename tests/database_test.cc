#include "src/storage/database.h"

#include <gtest/gtest.h>

namespace gluenail {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  DatabaseTest() : db_(&pool_) {}

  TermPool pool_;
  Database db_;
};

TEST_F(DatabaseTest, GetOrCreateIsIdempotent) {
  TermId edge = pool_.MakeSymbol("edge");
  Relation* a = db_.GetOrCreate(edge, 2);
  Relation* b = db_.GetOrCreate(edge, 2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a->arity(), 2u);
  EXPECT_EQ(db_.num_relations(), 1u);
}

TEST_F(DatabaseTest, SameNameDifferentArityAreDistinct) {
  TermId p = pool_.MakeSymbol("p");
  Relation* p1 = db_.GetOrCreate(p, 1);
  Relation* p2 = db_.GetOrCreate(p, 2);
  EXPECT_NE(p1, p2);
  EXPECT_EQ(db_.num_relations(), 2u);
}

TEST_F(DatabaseTest, FindReturnsNullForMissing) {
  EXPECT_EQ(db_.Find(pool_.MakeSymbol("nothing"), 3), nullptr);
}

TEST_F(DatabaseTest, ParameterizedPredicateNames) {
  // students(cs99) and students(cs101) are different relations of the same
  // HiLog family (paper §5.1).
  TermId cs99 = pool_.MakeSymbol("cs99");
  TermId cs101 = pool_.MakeSymbol("cs101");
  std::vector<TermId> a1{cs99}, a2{cs101};
  TermId n1 = pool_.MakeCompound("students", a1);
  TermId n2 = pool_.MakeCompound("students", a2);
  Relation* r1 = db_.GetOrCreate(n1, 1);
  Relation* r2 = db_.GetOrCreate(n2, 1);
  EXPECT_NE(r1, r2);
  EXPECT_EQ(r1->name(), "students(cs99)");
  // Name term equality finds the same relation again.
  std::vector<TermId> a3{pool_.MakeSymbol("cs99")};
  EXPECT_EQ(db_.Find(pool_.MakeCompound("students", a3), 1), r1);
}

TEST_F(DatabaseTest, DropRemovesRelation) {
  TermId p = pool_.MakeSymbol("p");
  db_.GetOrCreate(p, 1);
  EXPECT_TRUE(db_.Drop(p, 1).ok());
  EXPECT_EQ(db_.Find(p, 1), nullptr);
  EXPECT_TRUE(db_.Drop(p, 1).IsNotFound());
}

TEST_F(DatabaseTest, RelationsWithArity) {
  db_.GetOrCreate(pool_.MakeSymbol("a"), 1);
  db_.GetOrCreate(pool_.MakeSymbol("b"), 1);
  db_.GetOrCreate(pool_.MakeSymbol("c"), 2);
  EXPECT_EQ(db_.RelationsWithArity(1).size(), 2u);
  EXPECT_EQ(db_.RelationsWithArity(2).size(), 1u);
  EXPECT_EQ(db_.RelationsWithArity(5).size(), 0u);
}

TEST_F(DatabaseTest, DefaultPolicyAppliedToNewRelations) {
  db_.set_default_index_policy(IndexPolicy::kNeverIndex);
  Relation* r = db_.GetOrCreate(pool_.MakeSymbol("q"), 1);
  EXPECT_EQ(r->index_policy(), IndexPolicy::kNeverIndex);
}

TEST_F(DatabaseTest, ForEachVisitsAll) {
  db_.GetOrCreate(pool_.MakeSymbol("a"), 1);
  db_.GetOrCreate(pool_.MakeSymbol("b"), 2);
  int count = 0;
  db_.ForEach([&](TermId, uint32_t, Relation*) { ++count; });
  EXPECT_EQ(count, 2);
}

}  // namespace
}  // namespace gluenail
