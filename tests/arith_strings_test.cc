/// Unit tests for arithmetic, comparison, and string builtins.

#include <gtest/gtest.h>

#include "src/runtime/arith.h"
#include "src/runtime/string_builtins.h"

namespace gluenail {
namespace {

class ArithTest : public ::testing::Test {
 protected:
  TermId I(int64_t v) { return pool_.MakeInt(v); }
  TermId F(double v) { return pool_.MakeFloat(v); }
  TermId S(std::string_view v) { return pool_.MakeSymbol(v); }

  int64_t IntOf(const Result<TermId>& r) {
    EXPECT_TRUE(r.ok()) << r.status();
    EXPECT_TRUE(pool_.IsInt(*r));
    return pool_.IntValue(*r);
  }
  double FloatOf(const Result<TermId>& r) {
    EXPECT_TRUE(r.ok()) << r.status();
    EXPECT_TRUE(pool_.IsFloat(*r));
    return pool_.FloatValue(*r);
  }

  TermPool pool_;
};

TEST_F(ArithTest, IntOpsStayInt) {
  EXPECT_EQ(IntOf(EvalArith(&pool_, "+", I(2), I(3))), 5);
  EXPECT_EQ(IntOf(EvalArith(&pool_, "-", I(2), I(3))), -1);
  EXPECT_EQ(IntOf(EvalArith(&pool_, "*", I(4), I(3))), 12);
  EXPECT_EQ(IntOf(EvalArith(&pool_, "/", I(7), I(2))), 3);
  EXPECT_EQ(IntOf(EvalArith(&pool_, "mod", I(7), I(2))), 1);
}

TEST_F(ArithTest, FloatWidening) {
  EXPECT_DOUBLE_EQ(FloatOf(EvalArith(&pool_, "+", I(1), F(0.5))), 1.5);
  EXPECT_DOUBLE_EQ(FloatOf(EvalArith(&pool_, "/", F(7), I(2))), 3.5);
  EXPECT_DOUBLE_EQ(FloatOf(EvalArith(&pool_, "mod", F(7.5), I(2))), 1.5);
}

TEST_F(ArithTest, DivisionByZero) {
  EXPECT_TRUE(EvalArith(&pool_, "/", I(1), I(0)).status().IsRuntimeError());
  EXPECT_TRUE(
      EvalArith(&pool_, "mod", I(1), I(0)).status().IsRuntimeError());
  EXPECT_TRUE(
      EvalArith(&pool_, "/", F(1), F(0)).status().IsRuntimeError());
}

TEST_F(ArithTest, NonNumbersRejected) {
  EXPECT_TRUE(EvalArith(&pool_, "+", S("a"), I(1)).status().IsRuntimeError());
  EXPECT_TRUE(EvalNegate(&pool_, S("a")).status().IsRuntimeError());
}

TEST_F(ArithTest, Negate) {
  EXPECT_EQ(IntOf(EvalNegate(&pool_, I(5))), -5);
  EXPECT_DOUBLE_EQ(FloatOf(EvalNegate(&pool_, F(2.5))), -2.5);
}

TEST_F(ArithTest, NumericComparisonAcrossKinds) {
  using ast::CompareOp;
  EXPECT_TRUE(*EvalCompare(pool_, CompareOp::kEq, I(1), F(1.0)));
  EXPECT_FALSE(*EvalCompare(pool_, CompareOp::kNe, I(1), F(1.0)));
  EXPECT_TRUE(*EvalCompare(pool_, CompareOp::kLt, I(1), F(1.5)));
  EXPECT_TRUE(*EvalCompare(pool_, CompareOp::kGe, F(2.0), I(2)));
}

TEST_F(ArithTest, TermEqualityForNonNumbers) {
  using ast::CompareOp;
  EXPECT_TRUE(*EvalCompare(pool_, CompareOp::kEq, S("a"), S("a")));
  EXPECT_FALSE(*EvalCompare(pool_, CompareOp::kEq, S("a"), S("b")));
  // Symbols order lexicographically for < (string ordering).
  EXPECT_TRUE(*EvalCompare(pool_, CompareOp::kLt, S("apple"), S("pear")));
}

TEST(StringBuiltinsLookupTest, ArityMatters) {
  EXPECT_TRUE(IsStringBuiltin("concat", 2));
  EXPECT_FALSE(IsStringBuiltin("concat", 3));
  EXPECT_TRUE(IsStringBuiltin("length", 1));
  EXPECT_TRUE(IsStringBuiltin("substring", 3));
  EXPECT_FALSE(IsStringBuiltin("upper", 1));
}

class StringBuiltinsTest : public ::testing::Test {
 protected:
  Result<TermId> Call(std::string_view f, std::vector<TermId> args) {
    return EvalStringBuiltin(&pool_, f, args);
  }
  TermPool pool_;
};

TEST_F(StringBuiltinsTest, Concat) {
  Result<TermId> r = Call(
      "concat", {pool_.MakeSymbol("foo"), pool_.MakeSymbol("bar")});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(pool_.SymbolName(*r), "foobar");
}

TEST_F(StringBuiltinsTest, ConcatRendersNumbers) {
  Result<TermId> r =
      Call("concat", {pool_.MakeSymbol("x="), pool_.MakeInt(42)});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(pool_.SymbolName(*r), "x=42");
}

TEST_F(StringBuiltinsTest, Length) {
  Result<TermId> r = Call("length", {pool_.MakeSymbol("hello")});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(pool_.IntValue(*r), 5);
  EXPECT_TRUE(
      Call("length", {pool_.MakeInt(5)}).status().IsRuntimeError());
}

TEST_F(StringBuiltinsTest, Substring) {
  TermId s = pool_.MakeSymbol("database");
  Result<TermId> r =
      Call("substring", {s, pool_.MakeInt(4), pool_.MakeInt(4)});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(pool_.SymbolName(*r), "base");
  // Length clamps to the available tail.
  r = Call("substring", {s, pool_.MakeInt(4), pool_.MakeInt(100)});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(pool_.SymbolName(*r), "base");
  // Negative / out-of-range starts are errors.
  EXPECT_TRUE(Call("substring", {s, pool_.MakeInt(-1), pool_.MakeInt(1)})
                  .status()
                  .IsRuntimeError());
  EXPECT_TRUE(Call("substring", {s, pool_.MakeInt(99), pool_.MakeInt(1)})
                  .status()
                  .IsRuntimeError());
}

}  // namespace
}  // namespace gluenail
