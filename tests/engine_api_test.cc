/// Engine facade tests: queries, calls, facts, persistence, statistics,
/// and option plumbing.

#include <gtest/gtest.h>

#include <fstream>

#include "src/api/engine.h"

namespace gluenail {
namespace {

TEST(EngineApiTest, QueryVariablesInFirstAppearanceOrder) {
  Engine engine;
  ASSERT_TRUE(engine.AddFact("edge(1,2).").ok());
  Result<Engine::QueryResult> r = engine.Query("edge(A,B) & B > A");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->vars, (std::vector<std::string>{"A", "B"}));
  ASSERT_EQ(r->rows.size(), 1u);
}

TEST(EngineApiTest, QueryAnswersAreDistinctAndSorted) {
  Engine engine;
  ASSERT_TRUE(engine.AddFact("p(3).").ok());
  ASSERT_TRUE(engine.AddFact("p(1).").ok());
  ASSERT_TRUE(engine.AddFact("q(3).").ok());
  ASSERT_TRUE(engine.AddFact("q(1).").ok());
  // X appears twice; answers deduped.
  Result<Engine::QueryResult> r = engine.Query("p(X) & q(X)");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(engine.terms().IntValue(r->rows[0][0]), 1);
  EXPECT_EQ(engine.terms().IntValue(r->rows[1][0]), 3);
}

TEST(EngineApiTest, QueryDoesNotDisturbState) {
  Engine engine;
  ASSERT_TRUE(engine.AddFact("p(1).").ok());
  size_t before = engine.snapshot()->edb().num_relations();
  ASSERT_TRUE(engine.Query("p(X)").ok());
  EXPECT_EQ(engine.snapshot()->edb().num_relations(), before);
}

TEST(EngineApiTest, AddFactVariants) {
  Engine engine;
  EXPECT_TRUE(engine.AddFact("edge(1,2).").ok());
  EXPECT_TRUE(engine.AddFact("edge(2,3)").ok());  // dot optional
  EXPECT_TRUE(engine.AddFact("flag.").ok());      // zero arity
  EXPECT_TRUE(engine.AddFact("students(cs99)(wilson).").ok());
  EXPECT_FALSE(engine.AddFact("42.").ok());
  EXPECT_FALSE(engine.AddFact("p(X).").ok());  // not ground
  Result<Engine::QueryResult> r = engine.Query("edge(X,Y)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
}

TEST(EngineApiTest, RelationContents) {
  Engine engine;
  ASSERT_TRUE(engine.AddFact("p(2).").ok());
  ASSERT_TRUE(engine.AddFact("p(1).").ok());
  Result<std::vector<Tuple>> rows = engine.RelationContents("p", 1);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ(engine.terms().IntValue((*rows)[0][0]), 1);
  EXPECT_TRUE(engine.RelationContents("zzz", 1).status().IsNotFound());
}

TEST(EngineApiTest, RelationContentsReachesNailPredicates) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(R"(
module kb;
edb edge(X,Y);
path(X,Y) :- edge(X,Y).
path(X,Z) :- path(X,Y) & edge(Y,Z).
edge(1,2). edge(2,3).
end
)").ok());
  Result<std::vector<Tuple>> rows = engine.RelationContents("path", 2);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);
}

TEST(EngineApiTest, EdbPersistenceBetweenRuns) {
  // §10: "storing EDB relations on disk between runs".
  const std::string path = testing::TempDir() + "/gluenail_engine_run.facts";
  {
    Engine engine;
    ASSERT_TRUE(engine.AddFact("account(alice, 100).").ok());
    ASSERT_TRUE(engine.AddFact("account(bob, 50).").ok());
    ASSERT_TRUE(
        engine.ExecuteStatement(
                  "account(N, B) +=[N] account(N, B0) & N = alice & "
                  "B = B0 + 10.")
            .ok());
    ASSERT_TRUE(engine.SaveEdbFile(path).ok());
  }
  {
    Engine engine;
    ASSERT_TRUE(engine.LoadEdbFile(path).ok());
    Result<Engine::QueryResult> r = engine.Query("account(alice, B)");
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->rows.size(), 1u);
    EXPECT_EQ(engine.terms().IntValue(r->rows[0][0]), 110);
  }
}

TEST(EngineApiTest, CompileStatsArePopulated) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(R"(
module kb;
edb edge(X,Y);
export go(:);
path(X,Y) :- edge(X,Y).
path(X,Z) :- path(X,Y) & edge(Y,Z).
proc go(:)
  return(:) := true.
end
end
)").ok());
  const CompileStats& cs = engine.compile_stats();
  EXPECT_EQ(cs.modules, 1u);
  EXPECT_EQ(cs.procedures, 1u);
  EXPECT_GE(cs.generated_procedures, 2u);  // stratum + driver
  EXPECT_EQ(cs.nail_rules, 2u);
  EXPECT_EQ(cs.nail_predicates, 1u);
  EXPECT_GT(cs.statements, 0u);
  EXPECT_FALSE(FormatCompileStats(cs).empty());
}

TEST(EngineApiTest, ExecStatsAccumulateAndReset) {
  Engine engine;
  ASSERT_TRUE(engine.AddFact("p(1).").ok());
  ASSERT_TRUE(engine.ExecuteStatement("q(X) := p(X).").ok());
  EXPECT_GT(engine.exec_stats().statements, 0u);
  EXPECT_FALSE(FormatExecStats(engine.exec_stats()).empty());
  engine.ResetExecStats();
  EXPECT_EQ(engine.exec_stats().statements, 0u);
}

TEST(EngineApiTest, HostRegistrationAfterLoadRejected) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram("module m; end").ok());
  HostProcedure h;
  h.name = "late";
  h.fn = [](TermPool*, const Relation&, Relation*) { return Status::OK(); };
  EXPECT_TRUE(engine.RegisterHostProcedure(std::move(h)).IsInvalidArgument());
}

TEST(EngineApiTest, HostWithoutCallbackRejected) {
  Engine engine;
  HostProcedure h;
  h.name = "broken";
  EXPECT_TRUE(engine.RegisterHostProcedure(std::move(h)).IsInvalidArgument());
}

TEST(EngineApiTest, LoadProgramReplacesPrevious) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(R"(
module a;
export f(:X);
proc f(:X)
  return(:X) := true & X = 1.
end
end
)").ok());
  ASSERT_TRUE(engine.Call("f", {Tuple{}}).ok());
  ASSERT_TRUE(engine.LoadProgram(R"(
module b;
export g(:X);
proc g(:X)
  return(:X) := true & X = 2.
end
end
)").ok());
  EXPECT_TRUE(engine.Call("f", {Tuple{}}).status().IsNotFound());
  EXPECT_TRUE(engine.Call("g", {Tuple{}}).ok());
}

TEST(EngineApiTest, CallInputArityChecked) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(R"(
module m;
export f(X:Y);
proc f(X:Y)
  return(X:Y) := in(X) & Y = X.
end
end
)").ok());
  Tuple wrong{*engine.InternTerm("1"), *engine.InternTerm("2")};
  EXPECT_TRUE(engine.Call("f", {wrong}).status().IsInvalidArgument());
}

TEST(EngineApiTest, LoadProgramFile) {
  const std::string path = testing::TempDir() + "/engine_prog.gn";
  {
    std::ofstream f(path);
    f << "module kb;\nedb e(X);\np(X) :- e(X).\ne(3).\nend\n";
  }
  Engine engine;
  ASSERT_TRUE(engine.LoadProgramFile(path).ok());
  Result<Engine::QueryResult> r = engine.Query("p(X)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 1u);
  EXPECT_TRUE(
      engine.LoadProgramFile("/nonexistent/file.gn").IsIoError());
}

TEST(EngineApiTest, ParseErrorsSurfaceWithLocation) {
  Engine engine;
  Status s = engine.LoadProgram("module m; p(X) := q(X) end");
  ASSERT_TRUE(s.IsParseError());
  EXPECT_NE(s.message().find("line"), std::string::npos);
}

TEST(EngineApiTest, IndexPolicyOptionReachesRelations) {
  EngineOptions opts;
  opts.index_policy = IndexPolicy::kNeverIndex;
  Engine engine(opts);
  ASSERT_TRUE(engine.AddFact("p(1).").ok());
  Status s = engine.Mutate([](Database* edb, Database*, TermPool* pool) {
    Relation* rel = edb->Find(pool->MakeSymbol("p"), 1);
    if (rel == nullptr) return Status::NotFound("p/1");
    EXPECT_EQ(rel->index_policy(), IndexPolicy::kNeverIndex);
    return Status::OK();
  });
  ASSERT_TRUE(s.ok()) << s;
}

TEST(EngineApiTest, DedupOptionObservableInStats) {
  EngineOptions with;
  with.exec.dedup_at_breaks = true;
  EngineOptions without;
  without.exec.dedup_at_breaks = false;
  for (EngineOptions* o : {&with, &without}) {
    Engine engine(*o);
    // A join that produces duplicate binding projections.
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          engine.AddFact(StrCat("s(", i, ",", i % 2, ").")).ok());
    }
    ASSERT_TRUE(engine.ExecuteStatement("t(Y) := s(X, Y).").ok());
    Result<Engine::QueryResult> r = engine.Query("t(Y)");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->rows.size(), 2u);  // identical answers either way
  }
}

}  // namespace
}  // namespace gluenail
