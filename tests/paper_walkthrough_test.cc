/// The paper's worked examples as executable specifications, table by
/// table: the §3.2 supplementary-relation walkthrough, the §3.3
/// coldest-city trace (sup_1/sup_2/sup_3), and §2/§4 semantics sentences
/// each pinned to an assertion.

#include <gtest/gtest.h>

#include "src/api/engine.h"

namespace gluenail {
namespace {

class PaperWalkthroughTest
    : public ::testing::TestWithParam<ExecOptions::Strategy> {
 protected:
  PaperWalkthroughTest() {
    EngineOptions opts;
    opts.exec.strategy = GetParam();
    engine_ = std::make_unique<Engine>(opts);
  }

  void Fact(std::string_view f) {
    Status s = engine_->AddFact(f);
    ASSERT_TRUE(s.ok()) << s;
  }

  std::string Ask(std::string_view goal) {
    Result<Engine::QueryResult> r = engine_->Query(goal);
    EXPECT_TRUE(r.ok()) << goal << ": " << r.status();
    if (!r.ok()) return "<error>";
    std::string out;
    for (size_t i = 0; i < r->rows.size(); ++i) {
      if (i != 0) out += ";";
      for (size_t j = 0; j < r->rows[i].size(); ++j) {
        if (j != 0) out += ",";
        out += engine_->terms().ToString(r->rows[i][j]);
      }
    }
    return out;
  }

  std::unique_ptr<Engine> engine_;
};

TEST_P(PaperWalkthroughTest, Section32SupplementaryChain) {
  // h(X,W) := a(X,A,B) & b(A,C) & c(B,C,W).  — the §3.2 example.
  // Built so each supplementary step prunes: a yields 3 tuples, the b
  // join keeps 2, the c join keeps 1.
  Fact("a(x1, a1, b1).");
  Fact("a(x2, a2, b2).");
  Fact("a(x3, a3, b3).");   // a3 has no b partner
  Fact("b(a1, c1).");
  Fact("b(a2, c2).");
  Fact("c(b1, c1, w1).");   // only the x1 chain completes
  ASSERT_TRUE(engine_->ExecuteStatement(
                  "h(X,W) := a(X,A,B) & b(A,C) & c(B,C,W).")
                  .ok());
  EXPECT_EQ(Ask("h(X,W)"), "x1,w1");
}

TEST_P(PaperWalkthroughTest, Section33ColdestCityTrace) {
  // The exact sup_1/sup_2/sup_3 walkthrough: San Francisco 12, Madang 36,
  // Copenhagen -2; MinT = -2; only Copenhagen survives the T = MinT join.
  Fact("daily_temp('San Francisco', 12).");
  Fact("daily_temp('Madang', 36).");
  Fact("daily_temp('Copenhagen', -2).");
  ASSERT_TRUE(engine_->ExecuteStatement(
                  "coldest_city( Name ):= daily_temp( Name, T ) & "
                  "MinT = min(T) & T = MinT.")
                  .ok());
  EXPECT_EQ(Ask("coldest_city(N)"), "'Copenhagen'");
  // "or cities, in the case of a tie" (footnote 6).
  Fact("daily_temp('Oslo', -2).");
  ASSERT_TRUE(engine_->ExecuteStatement(
                  "coldest_city( Name ):= daily_temp( Name, T ) & "
                  "MinT = min(T) & T = MinT.")
                  .ok());
  EXPECT_EQ(Ask("coldest_city(N)"), "'Copenhagen';'Oslo'");
}

TEST_P(PaperWalkthroughTest, Section33MaxOverSup1) {
  // "if the value of temperature were { (10), (35) }, then max would
  // operate over sup_1 = { (10), (35) }, MaxT would be bound to 35, and
  // sup_2(T, MaxT) would be { (10,35), (35,35) }."
  Fact("temperature(10).");
  Fact("temperature(35).");
  ASSERT_TRUE(engine_->ExecuteStatement(
                  "sup2(T, MaxT) := temperature(T) & MaxT = max(T).")
                  .ok());
  EXPECT_EQ(Ask("sup2(T, M)"), "10,35;35,35");
}

TEST_P(PaperWalkthroughTest, Section2UseTheCurrentValue) {
  // "The meaning is always: use the current value." — the same statement
  // re-executed after EDB changes sees the new state.
  Fact("stock(widget, 5).");
  const char* stmt = "low(I) := stock(I, N) & N < 3.";
  ASSERT_TRUE(engine_->ExecuteStatement(stmt).ok());
  EXPECT_EQ(Ask("low(I)"), "");
  ASSERT_TRUE(
      engine_->ExecuteStatement("stock(I, N) +=[I] stock(I, N0) & "
                                "I = widget & N = N0 - 4.")
          .ok());
  ASSERT_TRUE(engine_->ExecuteStatement(stmt).ok());
  EXPECT_EQ(Ask("low(I)"), "widget");
}

TEST_P(PaperWalkthroughTest, Section2DuplicateFreedomAcrossSources) {
  // Tuples derived twice (two body derivations) appear once.
  Fact("r1(7).");
  Fact("r2(7).");
  ASSERT_TRUE(engine_->ExecuteStatement("u(X) += r1(X).").ok());
  ASSERT_TRUE(engine_->ExecuteStatement("u(X) += r2(X).").ok());
  EXPECT_EQ(Ask("u(X)"), "7");
}

TEST_P(PaperWalkthroughTest, Section4CallOnceObservableViaSideEffects) {
  // If the procedure were called per binding, the counter relation would
  // receive one marker per call; call-once leaves exactly one.
  ASSERT_TRUE(engine_->LoadProgram(R"(
module m;
edb seed(X), calls(X), out(X,Y);
export run(:);
proc noisy(X:Y)
  calls(c) += true.
  return(X:Y) := in(X) & Y = X * 10.
end
proc run(:)
  out(X, Y) := seed(X) & noisy(X, Y).
  return(:) := true.
end
seed(1). seed(2). seed(3).
end
)").ok());
  ASSERT_TRUE(engine_->Call("run", {{}}).ok());
  Result<Engine::QueryResult> calls = engine_->Query("calls(X)");
  ASSERT_TRUE(calls.ok());
  EXPECT_EQ(calls->rows.size(), 1u);  // one marker: one call
  EXPECT_EQ(Ask("out(X,Y)"), "1,10;2,20;3,30");
}

TEST_P(PaperWalkthroughTest, Section31FixedSubgoalOrderObserved) {
  // I/O happens in body order relative to fixed subgoals: the write of
  // the pre-update value precedes the update.
  std::ostringstream out;
  engine_->SetIo(&out, nullptr);
  Fact("v(1).");
  ASSERT_TRUE(engine_->ExecuteStatement(
                  "log(X) := v(X) & writeln(X) & --v(X) & ++v(99).")
                  .ok());
  EXPECT_EQ(out.str(), "1\n");
  EXPECT_EQ(Ask("v(X)"), "99");
}

TEST_P(PaperWalkthroughTest, IdentityMatrixFullContents) {
  // §3.1 matrix example, every cell checked.
  for (int i = 1; i <= 4; ++i) Fact(StrCat("row(", i, ")."));
  ASSERT_TRUE(
      engine_->ExecuteStatement("matrix(X,X, 1.0):= row(X).").ok());
  ASSERT_TRUE(engine_->ExecuteStatement(
                  "matrix(X,Y, 0.0)+= row(X) & row(Y) & X != Y.")
                  .ok());
  for (int i = 1; i <= 4; ++i) {
    for (int j = 1; j <= 4; ++j) {
      std::string cell = Ask(StrCat("matrix(", i, ",", j, ",V)"));
      EXPECT_EQ(cell, i == j ? "1.0" : "0.0") << i << "," << j;
    }
  }
}

TEST_P(PaperWalkthroughTest, ModifyKeyOverTwoColumns) {
  Fact("inventory(shelf1, bolts, 10).");
  Fact("inventory(shelf1, nuts, 20).");
  Fact("inventory(shelf2, bolts, 30).");
  Fact("delivery(shelf1, bolts, 99).");
  ASSERT_TRUE(engine_->ExecuteStatement(
                  "inventory(L, I, N) +=[L, I] delivery(L, I, N).")
                  .ok());
  EXPECT_EQ(Ask("inventory(L, I, N)"),
            "shelf1,bolts,99;shelf1,nuts,20;shelf2,bolts,30");
}

TEST_P(PaperWalkthroughTest, ModifyHeadWithComputedValue) {
  Fact("account(alice, 100).");
  ASSERT_TRUE(engine_->ExecuteStatement(
                  "account(N, B * 2) +=[N] account(N, B).")
                  .ok());
  EXPECT_EQ(Ask("account(N, B)"), "alice,200");
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, PaperWalkthroughTest,
    ::testing::Values(ExecOptions::Strategy::kMaterialized,
                      ExecOptions::Strategy::kPipelined),
    [](const ::testing::TestParamInfo<ExecOptions::Strategy>& info) {
      return info.param == ExecOptions::Strategy::kMaterialized
                 ? "Materialized"
                 : "Pipelined";
    });

}  // namespace
}  // namespace gluenail
