/// Module system tests (§6): visibility, separate compilation concerns,
/// shared EDB, export/import discipline.

#include <gtest/gtest.h>

#include "src/api/engine.h"

namespace gluenail {
namespace {

TEST(ModuleSystemTest, EdbDeclarationsAreGloballyVisible) {
  // The EDB is the shared database (§2); `edb` clauses declare schema.
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(R"(
module data;
edb stock(Item, Qty);
stock(bolts, 40).
end
module app;
export low(:Item);
proc low(:Item)
  return(:Item) := stock(Item, Q) & Q < 100.
end
end
)").ok());
  auto r = engine.Call("low", {{}});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->size(), 1u);
}

TEST(ModuleSystemTest, NailPredicatesImportableByExport) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(R"(
module graphlib;
edb edge(X,Y);
export path(X,Y);
path(X,Y) :- edge(X,Y).
path(X,Z) :- path(X,Y) & edge(Y,Z).
edge(1,2). edge(2,3).
end
module app;
from graphlib import path(X,Y);
export far(:Y);
proc far(:Y)
  return(:Y) := path(1, Y) & Y > 2.
end
end
)").ok());
  auto r = engine.Call("far", {{}});
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ(engine.terms().IntValue((*r)[0][0]), 3);
}

TEST(ModuleSystemTest, DuplicateProcedureInModuleRejected) {
  Engine engine;
  Status s = engine.LoadProgram(R"(
module m;
proc f(:) return(:) := true. end
proc f(:) return(:) := true. end
end
)");
  EXPECT_TRUE(s.IsCompileError()) << s;
}

TEST(ModuleSystemTest, ConflictingExportsRejected) {
  Engine engine;
  Status s = engine.LoadProgram(R"(
module a;
export f(:);
proc f(:) return(:) := true. end
end
module b;
export f(:);
proc f(:) return(:) := true. end
end
)");
  EXPECT_TRUE(s.IsCompileError()) << s;
}

TEST(ModuleSystemTest, SameProcedureNameInTwoModulesOk) {
  // Unexported names do not clash across modules.
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(R"(
module a;
export fa(:X);
proc helper(:X) return(:X) := true & X = 1. end
proc fa(:X) return(:X) := helper(X). end
end
module b;
export fb(:X);
proc helper(:X) return(:X) := true & X = 2. end
proc fb(:X) return(:X) := helper(X). end
end
)").ok());
  auto ra = engine.Call("fa", {{}});
  auto rb = engine.Call("fb", {{}});
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(engine.terms().IntValue((*ra)[0][0]), 1);
  EXPECT_EQ(engine.terms().IntValue((*rb)[0][0]), 2);
}

TEST(ModuleSystemTest, RulesAcrossModulesMerge) {
  // IDB predicates are global: rules in different modules for the same
  // predicate contribute together (documented deviation-free reading of
  // §6: modules organize code, not semantics).
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(R"(
module base;
edb e1(X,Y), e2(X,Y);
link(X,Y) :- e1(X,Y).
e1(1,2).
end
module extra;
link(X,Y) :- e2(X,Y).
e2(3,4).
end
)").ok());
  auto r = engine.Query("link(X,Y)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
}

TEST(ModuleSystemTest, ModuleFactsLoadIntoEdb) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(R"(
module seed;
edb p(X);
p(1). p(2).
end
)").ok());
  auto r = engine.Query("p(X)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
}

TEST(ModuleSystemTest, HostImportSatisfiesForeignModule) {
  // Figure 1 pattern: `from windows import event(...)` where `windows`
  // is not a Glue module at all.
  Engine engine;
  HostProcedure beep{"beep", 1, 0, true, nullptr};
  beep.fn = [](TermPool*, const Relation& input, Relation* output) {
    for (RowView t : input) output->Insert(t);
    return Status::OK();
  };
  ASSERT_TRUE(engine.RegisterHostProcedure(std::move(beep)).ok());
  ASSERT_TRUE(engine.LoadProgram(R"(
module app;
from audio import beep(X:);
export go(:);
proc go(:)
  return(:) := true & beep(1).
end
end
)").ok());
  EXPECT_TRUE(engine.Call("go", {{}}).ok());
}

TEST(ModuleSystemTest, MissingImportSourceRejected) {
  Engine engine;
  Status s = engine.LoadProgram(R"(
module app;
from nowhere import mystery(X:Y);
end
)");
  EXPECT_TRUE(s.IsCompileError()) << s;
}

TEST(ModuleSystemTest, LocalRelationShadowsEdb) {
  // §4: local declarations "hide" outer predicates they unify with.
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(R"(
module m;
edb shared(X);
export probe(:X);
proc probe(:X)
rels shared(X);
  shared(42) += true.
  return(:X) := shared(X).
end
shared(7).
end
)").ok());
  auto r = engine.Call("probe", {{}});
  ASSERT_TRUE(r.ok());
  // Only the local's contents: the EDB shared(7) is hidden.
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ(engine.terms().IntValue((*r)[0][0]), 42);
  // And the EDB relation was untouched.
  auto edb = engine.Query("shared(X)");
  ASSERT_TRUE(edb.ok());
  ASSERT_EQ(edb->rows.size(), 1u);
  EXPECT_EQ(engine.terms().IntValue(edb->rows[0][0]), 7);
}

TEST(ModuleSystemTest, ExportOfUnknownNameIsIgnoredForProcsButUsableForNail) {
  // An export listing a NAIL! predicate must not break linking.
  Engine engine;
  ASSERT_TRUE(engine.LoadProgram(R"(
module m;
edb e(X);
export derived(X);
derived(X) :- e(X).
e(5).
end
)").ok());
  auto r = engine.Query("derived(X)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 1u);
}

}  // namespace
}  // namespace gluenail
