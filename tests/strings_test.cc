#include "src/common/strings.h"

#include <gtest/gtest.h>

namespace gluenail {
namespace {

TEST(StringsTest, StrCat) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("gluenail", "glue"));
  EXPECT_FALSE(StartsWith("glue", "gluenail"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(StringsTest, Split) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, EscapeRoundTrip) {
  const std::string original = "it's a \\ test\nwith\ttabs";
  EXPECT_EQ(UnescapeQuoted(EscapeQuoted(original)), original);
  EXPECT_EQ(EscapeQuoted("a'b"), "a\\'b");
}

TEST(StringsTest, HashIsStable) {
  const char data[] = "glue";
  EXPECT_EQ(Fnv1a64(data, 4), Fnv1a64(data, 4));
  EXPECT_NE(Fnv1a64("a", 1), Fnv1a64("b", 1));
}

TEST(StringsTest, HashCombineOrderSensitive) {
  EXPECT_NE(HashCombine(HashCombine(0, 1), 2),
            HashCombine(HashCombine(0, 2), 1));
}

}  // namespace
}  // namespace gluenail
