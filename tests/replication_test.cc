/// \file replication_test.cc
/// \brief Log-shipping replication suite: payload codecs, the replica
/// write fence, primary->replica convergence to byte-identical query
/// results (EDB and IVM-maintained IDB), rotated-log snapshot bootstrap,
/// torn-stream and primary-restart recovery, and the fault-injector
/// sweep proving a replica only ever holds an acked-durable prefix.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/api/command.h"
#include "src/api/engine.h"
#include "src/common/fault_injector.h"
#include "src/common/strings.h"
#include "src/server/client.h"
#include "src/server/protocol.h"
#include "src/server/replication.h"
#include "src/server/server.h"
#include "src/storage/mutation_batch.h"

namespace gluenail {
namespace {

std::string FreshDir(const std::string& tag) {
  std::string tmpl = testing::TempDir() + "/gluenail_repl_" + tag + "_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  char* got = ::mkdtemp(buf.data());
  EXPECT_NE(got, nullptr) << tmpl;
  return std::string(buf.data());
}

MutationBatch InsertBatch(std::initializer_list<int> keys) {
  MutationBatch b;
  for (int k : keys) b.Insert(StrCat("f(", k, ")"));
  return b;
}

/// Every f/1 fact as its integer — the differential oracle's view.
std::set<int> Facts(Engine* engine) {
  Result<std::vector<Tuple>> rows = engine->RelationContents("f", 1);
  std::set<int> out;
  if (!rows.ok()) return out;
  for (const Tuple& t : *rows) {
    out.insert(static_cast<int>(engine->terms().IntValue(t[0])));
  }
  return out;
}

EngineOptions PrimaryOpts(const std::string& dir) {
  EngineOptions opts;
  opts.data_dir = dir;
  opts.durability = DurabilityLevel::kSync;
  return opts;
}

EngineOptions ReplicaOpts(const std::string& hint = "") {
  EngineOptions opts;
  opts.replica = true;
  opts.primary_hint = hint;
  return opts;
}

ReplicationClientOptions TailOpts(uint16_t port) {
  ReplicationClientOptions opts;
  opts.host = "127.0.0.1";
  opts.port = port;
  opts.reconnect_initial = std::chrono::milliseconds(5);
  opts.reconnect_max = std::chrono::milliseconds(50);
  return opts;
}

bool WaitUntil(const std::function<bool()>& pred,
               std::chrono::milliseconds timeout =
                   std::chrono::milliseconds(10000)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

/// The replica has applied everything the primary acked as durable.
bool CaughtUp(Engine* primary, Engine* replica) {
  // Engine::durable_lsn is the monotonic acked watermark; the raw
  // Wal::durable_lsn resets when a checkpoint rotates the log.
  return replica->replica_applied_lsn() >= primary->durable_lsn();
}

/// Query over the wire, rows rendered to sorted text — the unit of the
/// byte-identical differential comparison.
std::vector<std::string> WireRows(Client* client, const std::string& goal) {
  Result<WireResponse> r = client->Execute(Command::Query(goal));
  EXPECT_TRUE(r.ok()) << r.status();
  if (!r.ok()) return {};
  EXPECT_TRUE(r->ok()) << r->status;
  std::vector<std::string> rows;
  for (const std::vector<std::string>& row : r->rows) {
    std::string line;
    for (const std::string& cell : row) {
      line += cell;
      line += '|';
    }
    rows.push_back(std::move(line));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

class ReplTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Instance().Disarm(); }
  void TearDown() override { FaultInjector::Instance().Disarm(); }
};

// --- Payload codecs --------------------------------------------------------

TEST_F(ReplTest, SubscribeCodecRoundTripsAndValidates) {
  Result<uint64_t> from = DecodeReplSubscribe(EncodeReplSubscribe(42));
  ASSERT_TRUE(from.ok()) << from.status();
  EXPECT_EQ(*from, 42u);

  // Wrong version byte.
  std::string bad = EncodeReplSubscribe(1);
  bad[0] = 9;
  EXPECT_FALSE(DecodeReplSubscribe(bad).ok());
  // Truncated and trailing bytes.
  EXPECT_FALSE(DecodeReplSubscribe(bad.substr(0, 4)).ok());
  EXPECT_FALSE(DecodeReplSubscribe(EncodeReplSubscribe(1) + "x").ok());
}

TEST_F(ReplTest, RecordCodecRoundTripsBothKinds) {
  Result<ReplRecord> batch =
      DecodeReplRecord(EncodeReplBatch(7, "%% batch text"));
  ASSERT_TRUE(batch.ok()) << batch.status();
  EXPECT_EQ(batch->kind, ReplRecordKind::kBatch);
  EXPECT_EQ(batch->lsn, 7u);
  EXPECT_EQ(batch->body, "%% batch text");

  Result<ReplRecord> snap =
      DecodeReplRecord(EncodeReplSnapshot(12, "image bytes"));
  ASSERT_TRUE(snap.ok()) << snap.status();
  EXPECT_EQ(snap->kind, ReplRecordKind::kSnapshot);
  EXPECT_EQ(snap->lsn, 12u);
  EXPECT_EQ(snap->body, "image bytes");

  std::string unknown = EncodeReplBatch(1, "x");
  unknown[0] = 5;
  EXPECT_FALSE(DecodeReplRecord(unknown).ok());
  EXPECT_FALSE(DecodeReplRecord(EncodeReplBatch(1, "x") + "y").ok());

  Result<uint64_t> hb = DecodeReplHeartbeat(EncodeReplHeartbeat(99));
  ASSERT_TRUE(hb.ok());
  EXPECT_EQ(*hb, 99u);
  EXPECT_FALSE(DecodeReplHeartbeat("abc").ok());
}

// --- The replica write fence ----------------------------------------------

TEST_F(ReplTest, ReplicaRefusesMutationsWithFailedPrecondition) {
  Engine replica(ReplicaOpts("primary.example:4000"));
  // Direct API path.
  Result<MutationBatch::ApplyReport> direct =
      replica.ApplyBatch(InsertBatch({1}));
  ASSERT_FALSE(direct.ok());
  EXPECT_EQ(direct.status().code(), StatusCode::kFailedPrecondition);

  // Wire path: the code survives the trip and the message points the
  // client at the primary.
  Server server(&replica, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  Result<Client> client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  Result<WireResponse> r =
      client->Execute(Command::MutateBatch(InsertBatch({1})));
  ASSERT_TRUE(r.ok()) << r.status();  // transport fine, engine said no
  EXPECT_FALSE(r->ok());
  EXPECT_EQ(r->status.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(r->status.message().find("primary.example:4000"),
            std::string::npos);

  // Reads still serve.
  EXPECT_TRUE(client->Ping().ok());
}

// --- Convergence (the differential test) ----------------------------------

constexpr char kGraphProgram[] = R"(
module kb;
edb edge(X,Y);
edb f(X);
reach(X,Y) :- edge(X,Y).
reach(X,Z) :- reach(X,Y) & edge(Y,Z).
end
)";

TEST_F(ReplTest, ReplicaConvergesToByteIdenticalQueryResults) {
  const std::string dir = FreshDir("converge");
  Engine primary(PrimaryOpts(dir));
  ASSERT_TRUE(primary.Recover().ok());
  ASSERT_TRUE(primary.LoadProgram(kGraphProgram).ok());
  Server primary_server(&primary, ServerOptions{});
  ASSERT_TRUE(primary_server.Start().ok());

  // The replica runs the same rules; its facts come from the stream.
  Engine replica(ReplicaOpts());
  ASSERT_TRUE(replica.LoadProgram(kGraphProgram).ok());
  Server replica_server(&replica, ServerOptions{});
  ASSERT_TRUE(replica_server.Start().ok());
  ReplicationClient tail(&replica, TailOpts(primary_server.port()));
  ASSERT_TRUE(tail.Start().ok());

  // A server_test-style workload against the primary: inserts, erases,
  // strings, several relations.
  Result<Client> writer = Client::Connect("127.0.0.1", primary_server.port());
  ASSERT_TRUE(writer.ok());
  for (int round = 0; round < 10; ++round) {
    MutationBatch batch;
    batch.Insert(StrCat("edge(", round, ",", round + 1, ")"));
    batch.Insert(StrCat("f(", round, ")"));
    batch.Insert(StrCat("tag('round_", round, "', ", round * round, ")"));
    if (round % 3 == 2) batch.Erase(StrCat("f(", round - 1, ")"));
    Result<WireResponse> r =
        writer->Execute(Command::MutateBatch(std::move(batch)));
    ASSERT_TRUE(r.ok()) << r.status();
    ASSERT_TRUE(r->ok()) << r->status;
  }

  ASSERT_TRUE(WaitUntil([&] { return CaughtUp(&primary, &replica); }))
      << "replica lag never reached zero";

  // Byte-identical answers over the wire, EDB and recursive IDB alike
  // (the replica's reach/2 memo is maintained incrementally per batch).
  Result<Client> rp = Client::Connect("127.0.0.1", primary_server.port());
  Result<Client> rr = Client::Connect("127.0.0.1", replica_server.port());
  ASSERT_TRUE(rp.ok());
  ASSERT_TRUE(rr.ok());
  for (const char* goal :
       {"edge(X,Y)", "f(X)", "tag(N,S)", "reach(X,Y)", "reach(0,Y)"}) {
    SCOPED_TRACE(goal);
    std::vector<std::string> want = WireRows(&*rp, goal);
    std::vector<std::string> got = WireRows(&*rr, goal);
    EXPECT_FALSE(want.empty());
    EXPECT_EQ(got, want);
  }

  // Replica-side observability: applied/lag metrics are exported.
  std::string dump = replica.DumpMetrics();
  EXPECT_NE(dump.find("gluenail_repl_applied_lsn"), std::string::npos);
  EXPECT_NE(dump.find("gluenail_repl_lag"), std::string::npos);
  EXPECT_NE(dump.find("gluenail_repl_batches_applied_total"),
            std::string::npos);
  // Primary-side: subscriber + shipped counters.
  std::string pdump = primary.DumpMetrics();
  EXPECT_NE(pdump.find("gluenail_repl_subscribers"), std::string::npos);
  EXPECT_NE(pdump.find("gluenail_repl_records_shipped_total"),
            std::string::npos);

  tail.Stop();
  replica_server.Stop();
  primary_server.Stop();
}

// --- Snapshot bootstrap ----------------------------------------------------

TEST_F(ReplTest, ReplicaBehindARotatedLogBootstrapsFromTheCheckpoint) {
  const std::string dir = FreshDir("bootstrap");
  Engine primary(PrimaryOpts(dir));
  ASSERT_TRUE(primary.Recover().ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(primary.ApplyBatch(InsertBatch({i})).ok());
  }
  // The checkpoint rotates the WAL: LSNs 1..3 are no longer in the log,
  // so a replica subscribing from 1 cannot be served by records alone.
  ASSERT_TRUE(primary.Checkpoint().ok());
  ASSERT_TRUE(primary.ApplyBatch(InsertBatch({10})).ok());
  ASSERT_TRUE(primary.ApplyBatch(InsertBatch({11})).ok());

  Server server(&primary, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  Engine replica(ReplicaOpts());
  ReplicationClient tail(&replica, TailOpts(server.port()));
  ASSERT_TRUE(tail.Start().ok());

  ASSERT_TRUE(WaitUntil([&] { return CaughtUp(&primary, &replica); }));
  EXPECT_EQ(Facts(&replica), (std::set<int>{0, 1, 2, 10, 11}));
  EXPECT_GE(tail.snapshots_applied(), 1u);
  EXPECT_EQ(tail.batches_applied(), 2u);  // only the post-rotation tail
  EXPECT_EQ(replica.replica_applied_lsn(), primary.durable_lsn());
  EXPECT_NE(replica.DumpMetrics().find("gluenail_repl_snapshot_bootstraps"),
            std::string::npos);

  tail.Stop();
  server.Stop();
}

// --- Stream damage ---------------------------------------------------------

/// A fake primary that serves each accepted connection one canned blob,
/// then closes it. Exercises the replica's torn-stream handling without a
/// real engine in the loop.
class FakePrimary {
 public:
  explicit FakePrimary(std::vector<std::string> blobs)
      : blobs_(std::move(blobs)) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    EXPECT_EQ(::listen(fd_, 8), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len),
              0);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { Serve(); });
  }
  ~FakePrimary() {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    thread_.join();
  }
  uint16_t port() const { return port_; }
  int served() const { return served_.load(std::memory_order_acquire); }

 private:
  void Serve() {
    for (size_t i = 0; i < blobs_.size(); ++i) {
      int conn = ::accept(fd_, nullptr, nullptr);
      if (conn < 0) return;
      // Swallow the subscribe frame, then serve the canned bytes.
      char buf[1024];
      (void)::recv(conn, buf, sizeof(buf), 0);
      (void)::send(conn, blobs_[i].data(), blobs_[i].size(), MSG_NOSIGNAL);
      ::shutdown(conn, SHUT_RDWR);
      ::close(conn);
      served_.fetch_add(1, std::memory_order_release);
    }
  }

  std::vector<std::string> blobs_;
  int fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<int> served_{0};
};

TEST_F(ReplTest, TornAndCorruptStreamsResubscribeWithoutApplyingAnything) {
  // Stream 1: a record frame torn mid-payload. Stream 2: a frame whose
  // checksum is flipped. Neither may reach the apply path.
  std::string torn =
      EncodeFrame(FrameType::kReplRecord, EncodeReplBatch(1, "half"));
  torn.resize(torn.size() / 2);
  std::string corrupt =
      EncodeFrame(FrameType::kReplRecord, EncodeReplBatch(1, "flip"));
  corrupt[corrupt.size() - 1] ^= 0x40;  // damage the payload vs checksum
  FakePrimary fake({torn, corrupt});

  Engine replica(ReplicaOpts());
  ReplicationClient tail(&replica, TailOpts(fake.port()));
  ASSERT_TRUE(tail.Start().ok());
  ASSERT_TRUE(WaitUntil([&] { return fake.served() >= 2; }));
  // Both streams died without advancing the replica an inch.
  ASSERT_TRUE(WaitUntil([&] { return tail.reconnects() >= 2; }));
  tail.Stop();
  EXPECT_EQ(tail.batches_applied(), 0u);
  EXPECT_EQ(replica.replica_applied_lsn(), 0u);
  EXPECT_TRUE(Facts(&replica).empty());
}

// --- Primary restart -------------------------------------------------------

TEST_F(ReplTest, ReplicaRidesOutAPrimaryRestartMidStream) {
  const std::string dir = FreshDir("restart");
  Engine replica(ReplicaOpts());
  std::unique_ptr<ReplicationClient> tail;  // outlives both primaries
  uint16_t port = 0;
  {
    Engine primary(PrimaryOpts(dir));
    ASSERT_TRUE(primary.Recover().ok());
    Server server(&primary, ServerOptions{});
    ASSERT_TRUE(server.Start().ok());
    port = server.port();
    tail = std::make_unique<ReplicationClient>(&replica, TailOpts(port));
    ASSERT_TRUE(tail->Start().ok());
    ASSERT_TRUE(primary.ApplyBatch(InsertBatch({1, 2})).ok());
    ASSERT_TRUE(WaitUntil([&] { return CaughtUp(&primary, &replica); }));
    EXPECT_EQ(Facts(&replica), (std::set<int>{1, 2}));
    server.Stop();
    ASSERT_TRUE(primary.Checkpoint().ok());  // clean shutdown
  }
  // The primary is down; the replica keeps dialing with backoff.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  {
    Engine primary(PrimaryOpts(dir));
    ASSERT_TRUE(primary.Recover().ok());
    ServerOptions opts;
    opts.port = port;  // same address, SO_REUSEADDR in the listener
    Server server(&primary, opts);
    ASSERT_TRUE(server.Start().ok());
    ASSERT_TRUE(primary.ApplyBatch(InsertBatch({3})).ok());
    ASSERT_TRUE(WaitUntil([&] {
      return Facts(&replica) == std::set<int>{1, 2, 3};
    })) << "replica never reconverged after the restart";
    EXPECT_GE(tail->reconnects(), 1u);
    tail->Stop();
    server.Stop();
  }
}

// --- Fault-injection sweep -------------------------------------------------

TEST_F(ReplTest, ReplicaHoldsExactlyTheAckedPrefixUnderPrimaryFaults) {
  const std::string dir = FreshDir("faults");
  Engine primary(PrimaryOpts(dir));
  ASSERT_TRUE(primary.Recover().ok());
  Server server(&primary, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  Engine replica(ReplicaOpts());
  ReplicationClient tail(&replica, TailOpts(server.port()));
  ASSERT_TRUE(tail.Start().ok());

  // Seeded fault schedule on the primary's WAL I/O: some batches fail to
  // commit. The replication contract: only acked (durable) batches may
  // ever appear on the replica.
  std::set<int> acked;
  FaultInjector::Instance().ArmSeeded(0xfeedULL, 5);
  for (int i = 0; i < 30; ++i) {
    Result<MutationBatch::ApplyReport> r = primary.ApplyBatch(InsertBatch({i}));
    if (r.ok()) {
      acked.insert(i);
    } else {
      // A failed fsync leaves the log broken; the checkpoint heals it.
      // A failed commit is ambiguous to the writer (the record may be
      // durable and already tailed by the replica even though memory
      // rejected it), so after healing, settle the ambiguity the way a
      // real client would: retry the idempotent batch until it commits.
      FaultInjector::Instance().Disarm();
      Status healed = primary.Checkpoint();
      ASSERT_TRUE(healed.ok()) << healed;
      Result<MutationBatch::ApplyReport> retried =
          primary.ApplyBatch(InsertBatch({i}));
      ASSERT_TRUE(retried.ok()) << retried.status();
      acked.insert(i);
      FaultInjector::Instance().ArmSeeded(0xfeedULL + i, 5);
    }
    // Sampled invariant: the replica never runs ahead of the ack point.
    EXPECT_LE(replica.replica_applied_lsn(), primary.durable_lsn());
  }
  FaultInjector::Instance().Disarm();
  ASSERT_TRUE(WaitUntil([&] { return CaughtUp(&primary, &replica); }));
  // Converged: exactly the acked set, nothing the primary rolled back.
  EXPECT_EQ(Facts(&replica), acked);
  EXPECT_EQ(Facts(&primary), acked);

  tail.Stop();
  server.Stop();
}

}  // namespace
}  // namespace gluenail
