/// \file wal_test.cc
/// \brief Durability suite: WAL format + scan, torn-tail and mid-log
/// damage, crash-point sweeps driven by the fault injector (with a shadow
/// oracle asserting recovery yields exactly the acked prefix), checkpoint
/// rotation, group commit under 8 concurrent writer sessions (the tsan
/// target), and the live-snapshot guard on Recover/LoadEdbFile.
///
/// The sweep invariants, from wal.h's failure semantics:
///  * single ArmNth fault on append/fsync/rename: recovered == acked;
///  * fault + failed rollback (kTruncate armed): acked ⊆ recovered ⊆
///    acked ∪ errored — the unknown-outcome window a real crash between
///    write and ack also leaves;
///  * seeded multi-fault schedules: the subset invariant, always.

#include "src/storage/wal.h"

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/api/command.h"
#include "src/api/engine.h"
#include "src/api/session.h"
#include "src/common/fault_injector.h"
#include "src/common/strings.h"
#include "src/storage/mutation_batch.h"
#include "src/storage/recovery.h"

namespace gluenail {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream out;
  out << is.rdbuf();
  return out.str();
}

void WriteFile(const std::string& path, const std::string& data) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os << data;
}

uint64_t FileSize(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 ? static_cast<uint64_t>(st.st_size)
                                        : 0;
}

/// A fresh directory per test case, so crash/recover cycles never see a
/// neighbor's files.
std::string FreshDir(const std::string& tag) {
  std::string tmpl = testing::TempDir() + "/gluenail_wal_" + tag + "_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  char* got = ::mkdtemp(buf.data());
  EXPECT_NE(got, nullptr) << tmpl;
  return std::string(buf.data());
}

MutationBatch InsertBatch(std::initializer_list<int> keys) {
  MutationBatch b;
  for (int k : keys) b.Insert(StrCat("f(", k, ")"));
  return b;
}

/// The shadow oracle's view of an engine: every f/1 fact as its integer.
std::set<int> Facts(Engine* engine) {
  Result<std::vector<Tuple>> rows = engine->RelationContents("f", 1);
  std::set<int> out;
  if (!rows.ok()) return out;  // relation never created = empty
  for (const Tuple& t : *rows) {
    out.insert(static_cast<int>(engine->terms().IntValue(t[0])));
  }
  return out;
}

EngineOptions DurableOpts(const std::string& dir, DurabilityLevel level,
                          int64_t fsync_interval_us = 200) {
  EngineOptions opts;
  opts.data_dir = dir;
  opts.durability = level;
  opts.wal_fsync_interval = std::chrono::microseconds(fsync_interval_us);
  return opts;
}

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Instance().Disarm(); }
  void TearDown() override { FaultInjector::Instance().Disarm(); }
};

// --- Log format + scan -----------------------------------------------------

TEST_F(WalTest, AppendScanRoundTrip) {
  const std::string dir = FreshDir("roundtrip");
  const std::string path = dir + "/wal.log";
  {
    Result<std::unique_ptr<Wal>> wal = Wal::Create(path, 1);
    ASSERT_TRUE(wal.ok()) << wal.status();
    for (int i = 0; i < 3; ++i) {
      Result<uint64_t> lsn = (*wal)->Append(InsertBatch({i}));
      ASSERT_TRUE(lsn.ok()) << lsn.status();
      EXPECT_EQ(*lsn, static_cast<uint64_t>(i + 1));
    }
    EXPECT_EQ((*wal)->durable_lsn(), 0u);
    ASSERT_TRUE((*wal)->Sync().ok());
    EXPECT_EQ((*wal)->durable_lsn(), 3u);
    EXPECT_EQ((*wal)->counters().appends.load(), 3u);
    EXPECT_EQ((*wal)->counters().syncs.load(), 1u);
  }
  const std::string data = ReadFile(path);
  Result<WalScanResult> scan = ScanWalBuffer(data);
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_EQ(scan->damage, WalDamage::kNone);
  ASSERT_EQ(scan->records.size(), 3u);
  EXPECT_EQ(scan->records[0].lsn, 1u);
  EXPECT_EQ(scan->last_lsn, 3u);
  EXPECT_EQ(scan->valid_bytes, data.size());
  // Each payload is a parseable batch.
  for (const WalScanRecord& rec : scan->records) {
    EXPECT_TRUE(MutationBatch::Parse(rec.payload).ok());
  }
}

TEST_F(WalTest, AppendRefusesOversizedPayload) {
  // A payload over the record cap must be refused before a byte is
  // written: recovery's scan rejects such lengths as corruption, so an
  // oversized record would be acked durable yet unrecoverable.
  const std::string dir = FreshDir("maxpayload");
  const std::string path = dir + "/wal.log";
  Result<std::unique_ptr<Wal>> wal = Wal::Create(path, 1);
  ASSERT_TRUE(wal.ok()) << wal.status();
  const uint64_t size_before = FileSize(path);

  const uint64_t prev = Wal::OverrideMaxPayloadForTesting(16);
  Result<uint64_t> refused = (*wal)->Append(InsertBatch({1, 2, 3, 4}));
  Wal::OverrideMaxPayloadForTesting(prev);

  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument)
      << refused.status();
  // No side effects: nothing written, numbering untouched, log healthy.
  EXPECT_EQ(FileSize(path), size_before);
  EXPECT_EQ((*wal)->next_lsn(), 1u);
  EXPECT_FALSE((*wal)->broken());
  EXPECT_EQ((*wal)->counters().appends.load(), 0u);

  // With the cap back at its default the same batch appends and recovers.
  Result<uint64_t> ok = (*wal)->Append(InsertBatch({1, 2, 3, 4}));
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(*ok, 1u);
  ASSERT_TRUE((*wal)->Sync().ok());
  Result<WalScanResult> scan = ScanWalBuffer(ReadFile(path));
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_EQ(scan->damage, WalDamage::kNone);
  EXPECT_EQ(scan->records.size(), 1u);
}

TEST_F(WalTest, OpenTruncatesTornTail) {
  const std::string dir = FreshDir("torntail");
  const std::string path = dir + "/wal.log";
  {
    Result<std::unique_ptr<Wal>> wal = Wal::Create(path, 1);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(InsertBatch({1})).ok());
    ASSERT_TRUE((*wal)->Append(InsertBatch({2})).ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  // A crashed append: garbage after the last full record.
  const std::string good = ReadFile(path);
  WriteFile(path, good + "GNWR\x01\x02torn-mid-append");
  Wal::OpenReport report;
  Result<std::unique_ptr<Wal>> wal = Wal::Open(path, 1, &report);
  ASSERT_TRUE(wal.ok()) << wal.status();
  EXPECT_FALSE(report.created);
  EXPECT_EQ(report.records, 2u);
  EXPECT_EQ(report.last_lsn, 2u);
  EXPECT_GT(report.truncated_bytes, 0u);
  EXPECT_EQ(FileSize(path), good.size());
  // Appending after the truncation continues the LSN sequence cleanly.
  Result<uint64_t> lsn = (*wal)->Append(InsertBatch({3}));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 3u);
  ASSERT_TRUE((*wal)->Sync().ok());
  Result<WalScanResult> scan = ScanWalBuffer(ReadFile(path));
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->damage, WalDamage::kNone);
  EXPECT_EQ(scan->records.size(), 3u);
}

TEST_F(WalTest, MidLogCorruptionStrictRefusesSalvageReplays) {
  const std::string dir = FreshDir("midlog");
  const std::string path = dir + "/wal.log";
  {
    Result<std::unique_ptr<Wal>> wal = Wal::Create(path, 1);
    ASSERT_TRUE(wal.ok());
    for (int i = 1; i <= 5; ++i) {
      ASSERT_TRUE((*wal)->Append(InsertBatch({i})).ok());
    }
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  // Corrupt one payload byte of record 3: its checksum fails, records 4-5
  // stay valid after it — mid-log damage, not a torn tail.
  std::string data = ReadFile(path);
  size_t third = data.find("GNWR", data.find("GNWR", data.find("GNWR") + 1) + 1);
  ASSERT_NE(third, std::string::npos);
  data[third + 30] ^= 0x40;  // inside record 3's payload
  WriteFile(path, data);

  Result<WalScanResult> scan = ScanWalBuffer(data);
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->damage, WalDamage::kMidLog);
  EXPECT_EQ(scan->records.size(), 2u);
  EXPECT_EQ(scan->salvaged.size(), 2u);

  // Open refuses a mid-log-corrupt file outright.
  EXPECT_FALSE(Wal::Open(path).ok());

  // Strict recovery refuses; salvage replays prefix + resynced tail and
  // demands a rotation.
  {
    TermPool pool;
    Database db(&pool);
    RecoveryOptions strict;
    Result<RecoveryReport> r =
        RecoverDatabase(&db, &pool, dir + "/none.facts", path, strict);
    EXPECT_FALSE(r.ok());
  }
  {
    TermPool pool;
    Database db(&pool);
    RecoveryOptions salvage;
    salvage.mode = RecoveryMode::kSalvage;
    Result<RecoveryReport> r =
        RecoverDatabase(&db, &pool, dir + "/none.facts", path, salvage);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->records_replayed, 4u);  // 1,2 + salvaged 4,5
    EXPECT_EQ(r->records_salvaged, 2u);
    EXPECT_TRUE(r->needs_reset);
  }
}

TEST_F(WalTest, DuplicateReplayIsIdempotent) {
  // A crash between checkpoint save and log rotation leaves a checkpoint
  // that already contains the log's effects. Replaying the overlap must
  // reproduce the identical state — the property that lets the engine skip
  // a checkpoint-LSN manifest.
  const std::string dir = FreshDir("idem");
  const std::string wal_path = dir + "/wal.log";
  const std::string ckpt = dir + "/checkpoint.facts";

  TermPool pool;
  Database db(&pool);
  MutationBatch b1;
  b1.Insert("f(1)");
  b1.Insert("f(2)");
  MutationBatch b2;
  b2.Erase("f(1)");
  b2.Insert("f(3)");
  {
    Result<std::unique_ptr<Wal>> wal = Wal::Create(wal_path, 1);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append(b1).ok());
    ASSERT_TRUE((*wal)->Append(b2).ok());
    ASSERT_TRUE((*wal)->Sync().ok());
  }
  ASSERT_TRUE(b1.Apply(&db, &pool).ok());
  ASSERT_TRUE(b2.Apply(&db, &pool).ok());
  ASSERT_TRUE(SaveDatabaseToFile(db, ckpt).ok());

  // Recover from checkpoint + the same (unrotated) log: full overlap.
  TermPool pool2;
  Database db2(&pool2);
  Result<RecoveryReport> r = RecoverDatabase(&db2, &pool2, ckpt, wal_path);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->checkpoint_found);
  EXPECT_EQ(r->records_replayed, 2u);

  Result<TermId> name = ParseGroundTerm(&pool2, "f");
  ASSERT_TRUE(name.ok());
  Relation* rel = db2.Find(*name, 1);
  ASSERT_NE(rel, nullptr);
  std::vector<Tuple> rows = rel->SortedTuples(pool2);
  ASSERT_EQ(rows.size(), 2u);  // f(2), f(3) — f(1) inserted then erased
}

// --- Engine lifecycle ------------------------------------------------------

TEST_F(WalTest, EngineRecoverApplyCrashRecover) {
  const std::string dir = FreshDir("lifecycle");
  std::set<int> acked;
  {
    Engine engine(DurableOpts(dir, DurabilityLevel::kGroupCommit));
    Result<RecoveryReport> boot = engine.Recover();
    ASSERT_TRUE(boot.ok()) << boot.status();
    EXPECT_FALSE(boot->checkpoint_found);
    for (int i = 0; i < 5; ++i) {
      Result<MutationBatch::ApplyReport> r =
          engine.ApplyBatch(InsertBatch({i}));
      ASSERT_TRUE(r.ok()) << r.status();
      EXPECT_EQ(r->inserted, 1u);
      acked.insert(i);
    }
    // Group commit acks only at a durable LSN.
    EXPECT_EQ(engine.durable_lsn(), 5u);
    EXPECT_EQ(Facts(&engine), acked);
    // "Crash": no checkpoint, no clean shutdown beyond the destructor.
  }
  {
    Engine engine(DurableOpts(dir, DurabilityLevel::kGroupCommit));
    Result<RecoveryReport> boot = engine.Recover();
    ASSERT_TRUE(boot.ok()) << boot.status();
    EXPECT_EQ(boot->records_replayed, 5u);
    EXPECT_EQ(Facts(&engine), acked);
    ASSERT_TRUE(engine.last_recovery().has_value());

    // Checkpoint truncates the log to a bare header behind it.
    ASSERT_TRUE(engine.Checkpoint().ok());
    EXPECT_EQ(FileSize(dir + "/wal.log"), 24u);
  }
  {
    Engine engine(DurableOpts(dir, DurabilityLevel::kGroupCommit));
    Result<RecoveryReport> boot = engine.Recover();
    ASSERT_TRUE(boot.ok());
    EXPECT_TRUE(boot->checkpoint_found);
    EXPECT_EQ(boot->records_replayed, 0u);
    EXPECT_EQ(Facts(&engine), acked);
    // LSNs continue after the checkpoint: the next commit is lsn 6.
    ASSERT_TRUE(engine.ApplyBatch(InsertBatch({99})).ok());
    EXPECT_EQ(engine.durable_lsn(), 6u);
  }
}

TEST_F(WalTest, AsyncAcksEarlyAndDrainsOnDemand) {
  const std::string dir = FreshDir("async");
  std::set<int> acked;
  {
    // Huge interval: no piggybacked sync fires during the loop.
    Engine engine(
        DurableOpts(dir, DurabilityLevel::kAsync, 10 * 1000 * 1000));
    ASSERT_TRUE(engine.Recover().ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(engine.ApplyBatch(InsertBatch({i})).ok());
      acked.insert(i);
    }
    // Acked but (possibly) not yet durable — that is kAsync's contract.
    EXPECT_LE(engine.durable_lsn(), 4u);
    // SaveEdbFile drains in-flight commits first.
    ASSERT_TRUE(engine.SaveEdbFile(dir + "/manual.facts").ok());
    EXPECT_EQ(engine.durable_lsn(), 4u);
  }
  Engine engine(DurableOpts(dir, DurabilityLevel::kAsync));
  ASSERT_TRUE(engine.Recover().ok());
  EXPECT_EQ(Facts(&engine), acked);
}

TEST_F(WalTest, AddFactRoutesThroughLog) {
  const std::string dir = FreshDir("addfact");
  {
    Engine engine(DurableOpts(dir, DurabilityLevel::kSync));
    ASSERT_TRUE(engine.Recover().ok());
    ASSERT_TRUE(engine.AddFact("f(7).").ok());
    EXPECT_EQ(engine.durable_lsn(), 1u);
  }
  Engine engine(DurableOpts(dir, DurabilityLevel::kSync));
  ASSERT_TRUE(engine.Recover().ok());
  EXPECT_EQ(Facts(&engine), std::set<int>{7});
}

// --- Crash-point sweeps (the fault-injector matrix) ------------------------

/// Applies numbered batches, returning which ones acked and which errored.
struct SweepRun {
  std::set<int> acked;
  std::set<int> errored;
};

SweepRun ApplyNumbered(Engine* engine, int from, int to) {
  SweepRun run;
  for (int i = from; i < to; ++i) {
    Result<MutationBatch::ApplyReport> r = engine->ApplyBatch(InsertBatch({i}));
    if (r.ok()) {
      run.acked.insert(i);
    } else {
      run.errored.insert(i);
    }
  }
  return run;
}

/// After a crash at an injected fault: recovery must yield exactly the
/// acked set (strict invariant, single fault with working rollback).
void ExpectRecoversExactly(const std::string& dir,
                           const std::set<int>& acked) {
  FaultInjector::Instance().Disarm();
  Engine engine(DurableOpts(dir, DurabilityLevel::kSync));
  Result<RecoveryReport> boot = engine.Recover();
  ASSERT_TRUE(boot.ok()) << boot.status();
  EXPECT_EQ(Facts(&engine), acked) << boot->Summary();
}

TEST_F(WalTest, CrashPointSweepFailedAppend) {
  // Fail the nth WAL write: batch n's append rolls back, every other batch
  // acks, and recovery yields exactly the acked set.
  for (uint64_t nth = 1; nth <= 5; ++nth) {
    SCOPED_TRACE(StrCat("kWrite nth=", nth));
    const std::string dir = FreshDir(StrCat("sweep_w", nth));
    std::set<int> acked;
    {
      Engine engine(DurableOpts(dir, DurabilityLevel::kSync));
      ASSERT_TRUE(engine.Recover().ok());
      FaultInjector::Instance().ArmNth(FaultOp::kWrite, nth);
      SweepRun run = ApplyNumbered(&engine, 0, 8);
      FaultInjector::Instance().Disarm();
      EXPECT_EQ(run.errored.size(), 1u);
      EXPECT_EQ(run.errored.count(static_cast<int>(nth - 1)), 1u);
      acked = run.acked;
      EXPECT_EQ(Facts(&engine), acked);  // failed batch never hit memory
    }
    ExpectRecoversExactly(dir, acked);
  }
}

TEST_F(WalTest, CrashPointSweepFailedFsync) {
  // Fail the nth fsync: that batch errors, the log goes broken (later
  // batches error too), a checkpoint heals it, and at every stage recovery
  // yields exactly the acked set.
  for (uint64_t nth = 1; nth <= 4; ++nth) {
    SCOPED_TRACE(StrCat("kFsync nth=", nth));
    const std::string dir = FreshDir(StrCat("sweep_f", nth));
    std::set<int> acked;
    {
      Engine engine(DurableOpts(dir, DurabilityLevel::kSync));
      ASSERT_TRUE(engine.Recover().ok());
      FaultInjector::Instance().ArmNth(FaultOp::kFsync, nth);
      SweepRun run = ApplyNumbered(&engine, 0, 6);
      FaultInjector::Instance().Disarm();
      acked = run.acked;
      // Batches up to the fault acked; the faulted one and everything
      // after it (broken log) errored.
      EXPECT_EQ(acked.size(), nth - 1);
      EXPECT_EQ(run.errored.size(), 6 - (nth - 1));
      EXPECT_EQ(Facts(&engine), acked);

      // The checkpoint heals the broken log and commits resume.
      ASSERT_TRUE(engine.Checkpoint().ok());
      SweepRun after = ApplyNumbered(&engine, 100, 102);
      EXPECT_EQ(after.errored.size(), 0u);
      acked.insert(after.acked.begin(), after.acked.end());
    }
    ExpectRecoversExactly(dir, acked);
  }
}

TEST_F(WalTest, CheckpointHealRestartsGroupCommitFsyncs) {
  // Regression: a failed fsync rolls the log's next LSN back before the
  // checkpoint heal rotates. The heal must re-seed the engine's durability
  // watermarks from the rotated log — force-promoting the durable
  // watermark to the (higher, pre-rollback) appended watermark would make
  // post-heal group commits ack instantly against stale numbering, with
  // no fsync ever issued.
  const std::string dir = FreshDir("heal_gc");
  std::set<int> expected;
  {
    Engine engine(DurableOpts(dir, DurabilityLevel::kGroupCommit));
    ASSERT_TRUE(engine.Recover().ok());
    SweepRun pre = ApplyNumbered(&engine, 0, 3);  // lsns 1..3 durable
    ASSERT_EQ(pre.acked.size(), 3u);
    expected = pre.acked;

    FaultInjector::Instance().ArmNth(FaultOp::kFsync, 1);
    SweepRun faulted = ApplyNumbered(&engine, 10, 11);  // lsn 4 rolls back
    FaultInjector::Instance().Disarm();
    ASSERT_EQ(faulted.errored.size(), 1u);
    ASSERT_TRUE(engine.wal()->broken());
    // The errored batch was applied to memory before its failed ack, so
    // the healing checkpoint's image legitimately captures it.
    expected.insert(10);

    ASSERT_TRUE(engine.Checkpoint().ok());
    ASSERT_FALSE(engine.wal()->broken());
    EXPECT_EQ(engine.wal()->durable_lsn(), 0u);  // fresh rotated log

    // The first post-heal commit reuses the rolled-back LSN 4. Its ack
    // must mean a real fsync of the rotated log reached that LSN, not a
    // comparison against the stale pre-rotation watermark.
    SweepRun after = ApplyNumbered(&engine, 20, 21);
    ASSERT_EQ(after.acked.size(), 1u);
    EXPECT_GE(engine.wal()->durable_lsn(), 4u)
        << "acked with no fsync of the rotated log";
    expected.insert(20);

    // And the group-commit machinery keeps flowing afterwards.
    SweepRun more = ApplyNumbered(&engine, 30, 33);
    EXPECT_EQ(more.errored.size(), 0u);
    expected.insert(more.acked.begin(), more.acked.end());
    EXPECT_EQ(Facts(&engine), expected);
  }
  ExpectRecoversExactly(dir, expected);
}

TEST_F(WalTest, CrashPointSweepFailedAppendAndRollback) {
  // A multi-chunk record torn mid-write whose rollback ftruncate ALSO
  // fails: torn bytes stay on disk, the log is broken — but the torn
  // record cannot checksum, so recovery still yields exactly the acked
  // set.
  const std::string dir = FreshDir("sweep_wt");
  std::set<int> acked;
  {
    Engine engine(DurableOpts(dir, DurabilityLevel::kSync));
    ASSERT_TRUE(engine.Recover().ok());
    SweepRun pre = ApplyNumbered(&engine, 0, 3);
    ASSERT_EQ(pre.acked.size(), 3u);
    acked = pre.acked;

    // ~120 KiB of ops so the record spans >1 write chunk (64 KiB).
    MutationBatch big;
    for (int i = 0; i < 12000; ++i) big.Insert(StrCat("f(", 1000 + i, ")"));
    FaultInjector::Instance().ArmNth(FaultOp::kWrite, 2);
    FaultInjector::Instance().ArmNth(FaultOp::kTruncate, 1);
    Result<MutationBatch::ApplyReport> r = engine.ApplyBatch(big);
    FaultInjector::Instance().Disarm();
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(engine.wal()->broken());
    EXPECT_EQ(Facts(&engine), acked);
  }
  ExpectRecoversExactly(dir, acked);
}

TEST_F(WalTest, CrashPointSweepFailedFsyncAndRollback) {
  // fsync fails AND the rollback truncate fails: fully written but
  // unacked records survive on disk. This is the documented
  // unknown-outcome window, so the invariant relaxes to
  // acked ⊆ recovered ⊆ acked ∪ errored.
  const std::string dir = FreshDir("sweep_ft");
  SweepRun run;
  {
    Engine engine(DurableOpts(dir, DurabilityLevel::kSync));
    ASSERT_TRUE(engine.Recover().ok());
    FaultInjector::Instance().ArmNth(FaultOp::kFsync, 3);
    FaultInjector::Instance().ArmNth(FaultOp::kTruncate, 1);
    run = ApplyNumbered(&engine, 0, 5);
    FaultInjector::Instance().Disarm();
    EXPECT_EQ(run.acked.size(), 2u);
  }
  FaultInjector::Instance().Disarm();
  Engine engine(DurableOpts(dir, DurabilityLevel::kSync));
  ASSERT_TRUE(engine.Recover().ok());
  std::set<int> recovered = Facts(&engine);
  for (int k : run.acked) EXPECT_EQ(recovered.count(k), 1u) << "lost f(" << k << ")";
  for (int k : recovered) {
    EXPECT_TRUE(run.acked.count(k) == 1 || run.errored.count(k) == 1)
        << "f(" << k << ") was never submitted";
  }
}

TEST_F(WalTest, CrashPointSweepCheckpointRename) {
  // Fail each rename inside Checkpoint(): nth=1 is the checkpoint image's
  // publishing rename, nth=2 the log rotation's. Either way the previous
  // checkpoint+log pair stays consistent and recovery equals the acks.
  for (uint64_t nth = 1; nth <= 2; ++nth) {
    SCOPED_TRACE(StrCat("kRename nth=", nth));
    const std::string dir = FreshDir(StrCat("sweep_r", nth));
    std::set<int> acked;
    {
      Engine engine(DurableOpts(dir, DurabilityLevel::kSync));
      ASSERT_TRUE(engine.Recover().ok());
      SweepRun pre = ApplyNumbered(&engine, 0, 3);
      acked = pre.acked;
      FaultInjector::Instance().ArmNth(FaultOp::kRename, nth);
      Status cp = engine.Checkpoint();
      FaultInjector::Instance().Disarm();
      EXPECT_FALSE(cp.ok());
      // The log is not broken by a failed checkpoint; commits continue.
      SweepRun post = ApplyNumbered(&engine, 10, 13);
      EXPECT_EQ(post.errored.size(), 0u);
      acked.insert(post.acked.begin(), post.acked.end());
      EXPECT_EQ(Facts(&engine), acked);
    }
    ExpectRecoversExactly(dir, acked);
  }
}

TEST_F(WalTest, SeededCrashScheduleKeepsSubsetInvariant) {
  // Pseudo-random multi-fault schedules, mid-run checkpoints included:
  // whatever fails, acked ⊆ recovered ⊆ acked ∪ errored.
  for (uint64_t seed : {11u, 23u, 47u, 91u}) {
    SCOPED_TRACE(StrCat("seed=", seed));
    const std::string dir = FreshDir(StrCat("seeded", seed));
    SweepRun run;
    {
      Engine engine(DurableOpts(dir, DurabilityLevel::kSync));
      ASSERT_TRUE(engine.Recover().ok());
      FaultInjector::Instance().ArmSeeded(seed, 5);
      for (int i = 0; i < 30; ++i) {
        Result<MutationBatch::ApplyReport> r =
            engine.ApplyBatch(InsertBatch({i}));
        if (r.ok()) {
          run.acked.insert(i);
        } else {
          run.errored.insert(i);
        }
        // Periodic checkpoints, themselves subject to the schedule.
        if (i % 10 == 9) (void)engine.Checkpoint();
      }
      FaultInjector::Instance().Disarm();
    }
    FaultInjector::Instance().Disarm();
    Engine engine(DurableOpts(dir, DurabilityLevel::kSync));
    Result<RecoveryReport> boot = engine.Recover();
    ASSERT_TRUE(boot.ok()) << boot.status();
    std::set<int> recovered = Facts(&engine);
    for (int k : run.acked) {
      EXPECT_EQ(recovered.count(k), 1u) << "acked f(" << k << ") lost";
    }
    for (int k : recovered) {
      EXPECT_TRUE(run.acked.count(k) == 1 || run.errored.count(k) == 1)
          << "f(" << k << ") was never submitted";
    }
  }
}

// --- Group commit under concurrency (tsan target) --------------------------

TEST_F(WalTest, GroupCommitEightConcurrentWriters) {
  const std::string dir = FreshDir("group8");
  constexpr int kWriters = 8;
  constexpr int kBatchesPerWriter = 25;
  std::set<int> expected;
  {
    // A small linger makes the fsync amortization deterministic: each
    // leader waits long enough for the other writers to join its group.
    EngineOptions opts = DurableOpts(dir, DurabilityLevel::kGroupCommit);
    opts.wal_group_linger = std::chrono::microseconds(300);
    Engine engine(opts);
    ASSERT_TRUE(engine.Recover().ok());
    std::atomic<int> failures{0};
    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&engine, &failures, w] {
        Session session = engine.OpenSession();
        for (int i = 0; i < kBatchesPerWriter; ++i) {
          MutationBatch b;
          b.Insert(StrCat("f(", w * 1000 + i, ")"));
          Response resp = session.Execute(Command::MutateBatch(b));
          if (!resp.status.ok()) failures.fetch_add(1);
        }
      });
    }
    // A checkpoint races the writers mid-run: it must drain, rotate, and
    // leave every already-acked commit durable.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_TRUE(engine.Checkpoint().ok());
    for (std::thread& t : writers) t.join();
    ASSERT_EQ(failures.load(), 0);
    // Every committed LSN was durable before its ack returned.
    EXPECT_EQ(engine.durable_lsn(),
              static_cast<uint64_t>(kWriters * kBatchesPerWriter));
    expected = Facts(&engine);
    EXPECT_EQ(expected.size(),
              static_cast<size_t>(kWriters * kBatchesPerWriter));
    // The fsync count is the amortization: far fewer syncs than commits.
    EXPECT_LT(engine.wal()->counters().syncs.load(),
              static_cast<uint64_t>(kWriters * kBatchesPerWriter));
  }
  Engine engine(DurableOpts(dir, DurabilityLevel::kGroupCommit));
  ASSERT_TRUE(engine.Recover().ok());
  EXPECT_EQ(Facts(&engine), expected);
}

// --- Live-snapshot guard ---------------------------------------------------

TEST_F(WalTest, RecoverAndLoadRefuseWhileSnapshotsLive) {
  const std::string dir = FreshDir("guard");
  Engine engine(DurableOpts(dir, DurabilityLevel::kGroupCommit));
  ASSERT_TRUE(engine.Recover().ok());
  ASSERT_TRUE(engine.ApplyBatch(InsertBatch({1})).ok());
  ASSERT_TRUE(engine.SaveEdbFile(dir + "/manual.facts").ok());
  {
    Result<EngineSnapshot> snap = engine.snapshot();
    ASSERT_TRUE(snap.ok());
    // A reader holds a point-in-time view: the engine must refuse to swap
    // histories underneath it.
    EXPECT_FALSE(engine.Recover().ok());
    EXPECT_FALSE(engine.LoadEdbFile(dir + "/manual.facts").ok());
    // The snapshot itself stays valid and readable.
    EXPECT_EQ(snap->edb().num_relations(), 1u);
  }
  // Snapshot dropped: both proceed again.
  EXPECT_TRUE(engine.Recover().ok());
  EXPECT_TRUE(engine.LoadEdbFile(dir + "/manual.facts").ok());
  EXPECT_EQ(Facts(&engine), std::set<int>{1});
}

TEST_F(WalTest, MalformedBatchNeverReachesTheLog) {
  const std::string dir = FreshDir("malformed");
  Engine engine(DurableOpts(dir, DurabilityLevel::kSync));
  ASSERT_TRUE(engine.Recover().ok());
  MutationBatch bad;
  bad.Insert("f(1)");
  bad.Insert("not a fact ((");
  EXPECT_FALSE(engine.ApplyBatch(bad).ok());
  EXPECT_EQ(engine.wal()->counters().appends.load(), 0u);
  EXPECT_EQ(Facts(&engine), std::set<int>{});
}

}  // namespace
}  // namespace gluenail
