/// Cross-feature integration: combinations the single-feature suites do
/// not reach — host + Glue + NAIL! in one statement, post-aggregate
/// joins, HiLog sets over derived predicates, loops driving procedures,
/// and zero-arity corners.

#include <gtest/gtest.h>

#include <sstream>

#include "src/api/engine.h"

namespace gluenail {
namespace {

class CrossFeatureTest
    : public ::testing::TestWithParam<ExecOptions::Strategy> {
 protected:
  CrossFeatureTest() {
    EngineOptions opts;
    opts.exec.strategy = GetParam();
    engine_ = std::make_unique<Engine>(opts);
  }

  std::string Ask(std::string_view goal) {
    Result<Engine::QueryResult> r = engine_->Query(goal);
    EXPECT_TRUE(r.ok()) << goal << ": " << r.status();
    if (!r.ok()) return "<error>";
    std::string out;
    for (size_t i = 0; i < r->rows.size(); ++i) {
      if (i != 0) out += ";";
      for (size_t j = 0; j < r->rows[i].size(); ++j) {
        if (j != 0) out += ",";
        out += engine_->terms().ToString(r->rows[i][j]);
      }
    }
    return out;
  }

  std::unique_ptr<Engine> engine_;
};

TEST_P(CrossFeatureTest, HostGlueAndNailInOneStatement) {
  HostProcedure scale{"scale", 1, 1, false, nullptr};
  scale.fn = [](TermPool* pool, const Relation& input, Relation* output) {
    for (RowView t : input) {
      if (!pool->IsInt(t[0])) continue;
      output->Insert(Tuple{t[0], pool->MakeInt(pool->IntValue(t[0]) * 100)});
    }
    return Status::OK();
  };
  ASSERT_TRUE(engine_->RegisterHostProcedure(std::move(scale)).ok());
  ASSERT_TRUE(engine_->LoadProgram(R"(
module m;
edb edge(X,Y), result(A,B,C);
export run(:);
from native import scale(X:Y);
path(X,Y) :- edge(X,Y).
path(X,Z) :- path(X,Y) & edge(Y,Z).
proc bump(X:Y)
  return(X:Y) := in(X) & Y = X + 1.
end
proc run(:)
  % EDB + NAIL! + host + Glue procedure, one body.
  result(Y, S, B) := edge(1, X) & path(X, Y) & scale(Y, S) & bump(S, B).
  return(:) := true.
end
edge(1,2). edge(2,3).
end
)").ok());
  ASSERT_TRUE(engine_->Call("run", {{}}).ok());
  EXPECT_EQ(Ask("result(A,B,C)"), "3,300,301");
}

TEST_P(CrossFeatureTest, JoinAfterGroupedAggregate) {
  // Aggregates mid-statement followed by further matches: the per-group
  // mean is joined against a threshold relation.
  for (const char* f :
       {"score(math, a, 70).", "score(math, b, 90).",
        "score(art, a, 40).", "score(art, b, 50).",
        "passmark(math, 75).", "passmark(art, 60)."}) {
    ASSERT_TRUE(engine_->AddFact(f).ok());
  }
  ASSERT_TRUE(engine_->ExecuteStatement(
                  "passing_subject(S) := score(S, P, G) & group_by(S) & "
                  "M = mean(G) & passmark(S, T) & M >= T.")
                  .ok());
  EXPECT_EQ(Ask("passing_subject(S)"), "math");
}

TEST_P(CrossFeatureTest, TwoAggregatesDifferentGroupDepths) {
  for (const char* f :
       {"sale(east, jan, 10).", "sale(east, feb, 30).",
        "sale(west, jan, 100).", "sale(west, feb, 200)."}) {
    ASSERT_TRUE(engine_->AddFact(f).ok());
  }
  // Total per region, then the grand max of those totals via a second
  // statement (aggregate-of-aggregate).
  ASSERT_TRUE(engine_->ExecuteStatement(
                  "regional(R, T) := sale(R, M, V) & group_by(R) & "
                  "T = sum(V).")
                  .ok());
  ASSERT_TRUE(engine_->ExecuteStatement(
                  "best(R, T) := regional(R, T) & T = max(T).")
                  .ok());
  EXPECT_EQ(Ask("best(R, T)"), "west,300");
}

TEST_P(CrossFeatureTest, HiLogSetOfDerivedPredicate) {
  // A set-valued attribute naming a *NAIL!* predicate instance: the
  // dereference must trigger derivation.
  ASSERT_TRUE(engine_->LoadProgram(R"(
module m;
edb attends(S,C), course_set(C, Set);
students(C)(S) :- attends(S, C).
attends(ann, cs99). attends(bo, cs99).
course_set(cs99, students(cs99)).
end
)").ok());
  EXPECT_EQ(Ask("course_set(C, Set) & Set(Who)"),
            "cs99,students(cs99),ann;cs99,students(cs99),bo");
}

TEST_P(CrossFeatureTest, LoopDrivingProcedureCalls) {
  // A repeat loop whose body calls a procedure that shrinks a worklist.
  std::ostringstream out;
  engine_->SetIo(&out, nullptr);
  ASSERT_TRUE(engine_->LoadProgram(R"(
module m;
edb work(X), done(X);
export drain(:);
proc step(:X)
  return(:X) := work(X) & X = min(X) & --work(X) & ++done(X).
end
proc drain(:)
rels tick(X);
  repeat
    tick(X) := step(X).
  until empty(work(_));
  return(:) := true.
end
work(3). work(1). work(2).
end
)").ok());
  ASSERT_TRUE(engine_->Call("drain", {{}}).ok());
  EXPECT_EQ(Ask("done(X)"), "1;2;3");
  EXPECT_EQ(Ask("work(X)"), "");
}

TEST_P(CrossFeatureTest, ZeroArityEverything) {
  // Zero-arity relations as booleans; zero-arity procedure; empty tuple
  // plumbing end to end.
  ASSERT_TRUE(engine_->LoadProgram(R"(
module m;
edb armed, fired;
export maybe_fire(:);
proc maybe_fire(:)
  fired := armed.
  return(:) := true.
end
end
)").ok());
  ASSERT_TRUE(engine_->Call("maybe_fire", {{}}).ok());
  EXPECT_EQ(Ask("fired"), "");  // not armed: fired cleared/empty
  ASSERT_TRUE(engine_->AddFact("armed.").ok());
  ASSERT_TRUE(engine_->Call("maybe_fire", {{}}).ok());
  Result<Engine::QueryResult> r = engine_->Query("fired");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 1u);  // the empty tuple: true
}

TEST_P(CrossFeatureTest, NegatedLocalInsideProcedure) {
  ASSERT_TRUE(engine_->LoadProgram(R"(
module m;
edb all(X), out(X);
export keep_new(:);
proc keep_new(:)
rels seen(X);
  seen(X) += all(X) & X < 3.
  out(X) := all(X) & !seen(X).
  return(:) := true.
end
all(1). all(2). all(3). all(4).
end
)").ok());
  ASSERT_TRUE(engine_->Call("keep_new", {{}}).ok());
  EXPECT_EQ(Ask("out(X)"), "3;4");
}

TEST_P(CrossFeatureTest, StringPipelineThroughWrite) {
  std::ostringstream out;
  engine_->SetIo(&out, nullptr);
  ASSERT_TRUE(engine_->AddFact("user(ada, 3).").ok());
  ASSERT_TRUE(engine_->ExecuteStatement(
                  "logged(M) := user(N, Count) & "
                  "M = concat(concat(substring(N, 0, 1), '-'), Count) & "
                  "writeln(M).")
                  .ok());
  EXPECT_EQ(out.str(), "a-3\n");
  EXPECT_EQ(Ask("logged(M)"), "'a-3'");
}

TEST_P(CrossFeatureTest, DynamicHeadFromNailDerivedName) {
  // The written relation's name comes from a NAIL!-derived tuple.
  ASSERT_TRUE(engine_->LoadProgram(R"(
module m;
edb pref(P, Kind);
sink(P, box(P)) :- pref(P, _).
pref(ann, a). pref(bo, b).
end
)").ok());
  ASSERT_TRUE(engine_->ExecuteStatement(
                  "Box(K) += pref(P, K) & sink(P, Box).")
                  .ok());
  EXPECT_EQ(Ask("box(ann)(K)"), "a");
  EXPECT_EQ(Ask("box(bo)(K)"), "b");
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, CrossFeatureTest,
    ::testing::Values(ExecOptions::Strategy::kMaterialized,
                      ExecOptions::Strategy::kPipelined),
    [](const ::testing::TestParamInfo<ExecOptions::Strategy>& info) {
      return info.param == ExecOptions::Strategy::kMaterialized
                 ? "Materialized"
                 : "Pipelined";
    });

}  // namespace
}  // namespace gluenail
