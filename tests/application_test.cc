/// An application-scale integration test: a travel-booking system in
/// Glue-Nail, the "complete application" the paper positions the language
/// pair for. Exercises NAIL! views, per-group aggregation with
/// tie-breaking, negation with wildcards, compound-term booking
/// references, EDB updates, call-once procedures with several inputs at
/// once, and persistence.

#include <gtest/gtest.h>

#include "src/api/engine.h"

namespace gluenail {
namespace {

constexpr std::string_view kTravel = R"(
module travel;
edb flight(Id, From, To, Price),
    capacity(Id, Seats),
    booking(Ref, Passenger, FlightId);
export book(Passenger, From, To : Ref),
       refund(Ref:),
       manifest(:FlightId, Passenger),
       load_factor(:FlightId, Booked);

% ---- NAIL!: derived views -------------------------------------------
% Direct connections and one-stop routes (price = sum of legs).
route(F, T, direct(Id), P) :- flight(Id, F, T, P).
route(F, T, via(A, B), P) :-
  flight(A, F, M, P1) & flight(B, M, T, P2) & F != T &
  P = P1 + P2.

% ---- booking ----------------------------------------------------------
proc book(Passenger, From, To : Ref)
rels booked(Id, N), candidate(Pass, Id, P), choice(Pass, Id);
  % Current occupancy per flight (count a real variable, not a wildcard).
  booked(Id, N) := booking(R, _, Id) & group_by(Id) & N = count(R).
  % Candidate direct flights with a free seat.
  candidate(Pass, Id, P) :=
    in(Pass, F, T) & flight(Id, F, T, P) &
    capacity(Id, Cap) & booked(Id, N) & N < Cap.
  candidate(Pass, Id, P) +=
    in(Pass, F, T) & flight(Id, F, T, P) &
    capacity(Id, _) & !booked(Id, _).
  % Cheapest per passenger, deterministic tie-break.
  choice(Pass, Id) :=
    candidate(Pass, Id, P) & group_by(Pass) &
    P = min(P) & Id = arbitrary(Id).
  booking(bk(Pass, Id), Pass, Id) += choice(Pass, Id).
  return(Pass, From, To : Ref) :=
    in(Pass, From, To) & choice(Pass, Id) & Ref = bk(Pass, Id).
end

proc refund(Ref:)
  booking(Ref, P, Id) -= in(Ref) & booking(Ref, P, Id).
  return(Ref:) := in(Ref).
end

proc manifest(:FlightId, Passenger)
  return(:FlightId, Passenger) := booking(_, Passenger, FlightId).
end

proc load_factor(:FlightId, Booked)
  return(:FlightId, Booked) :=
    booking(R, _, FlightId) & group_by(FlightId) & Booked = count(R).
end

% ---- data --------------------------------------------------------------
flight(ba1, london, paris, 120).
flight(af2, london, paris, 90).
flight(af3, paris, rome, 80).
flight(lh4, london, rome, 250).
capacity(ba1, 3).
capacity(af2, 2).
capacity(af3, 3).
capacity(lh4, 1).
end
)";

class TravelTest : public ::testing::TestWithParam<ExecOptions::Strategy> {
 protected:
  TravelTest() {
    EngineOptions opts;
    opts.exec.strategy = GetParam();
    engine_ = std::make_unique<Engine>(opts);
    Status s = engine_->LoadProgram(kTravel);
    EXPECT_TRUE(s.ok()) << s;
  }

  TermId Sym(const char* s) { return *engine_->InternTerm(s); }

  /// Books one passenger; returns the printed booking ref ("" if none).
  std::string Book(const char* who, const char* from, const char* to) {
    auto r = engine_->Call("book", {{Sym(who), Sym(from), Sym(to)}});
    EXPECT_TRUE(r.ok()) << r.status();
    if (!r.ok() || r->empty()) return "";
    return engine_->terms().ToString((*r)[0][3]);
  }

  std::unique_ptr<Engine> engine_;
};

TEST_P(TravelTest, BooksCheapestFlight) {
  EXPECT_EQ(Book("ada", "london", "paris"), "bk(ada,af2)");
}

TEST_P(TravelTest, CapacityForcesPricierFlight) {
  // af2 holds 2; the third passenger lands on ba1.
  EXPECT_EQ(Book("ada", "london", "paris"), "bk(ada,af2)");
  EXPECT_EQ(Book("bob", "london", "paris"), "bk(bob,af2)");
  EXPECT_EQ(Book("cyd", "london", "paris"), "bk(cyd,ba1)");
  auto lf = engine_->Call("load_factor", {{}});
  ASSERT_TRUE(lf.ok());
  ASSERT_EQ(lf->size(), 2u);  // af2 and ba1 occupied
}

TEST_P(TravelTest, SoldOutRouteYieldsNoBooking) {
  EXPECT_EQ(Book("a", "london", "rome"), "bk(a,lh4)");
  // lh4 holds 1 and there is no other direct london->rome flight.
  EXPECT_EQ(Book("b", "london", "rome"), "");
}

TEST_P(TravelTest, RefundFreesTheSeat) {
  EXPECT_EQ(Book("a", "london", "rome"), "bk(a,lh4)");
  EXPECT_EQ(Book("b", "london", "rome"), "");
  TermId ref = *engine_->InternTerm("bk(a,lh4)");
  ASSERT_TRUE(engine_->Call("refund", {{ref}}).ok());
  EXPECT_EQ(Book("b", "london", "rome"), "bk(b,lh4)");
}

TEST_P(TravelTest, SeveralPassengersInOneCall) {
  // §4: call once on all bindings — both passengers in a single call.
  auto r = engine_->Call(
      "book", {{Sym("a"), Sym("london"), Sym("paris")},
               {Sym("b"), Sym("london"), Sym("rome")}});
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->size(), 2u);
}

TEST_P(TravelTest, ManifestListsPassengersPerFlight) {
  Book("ada", "london", "paris");
  Book("bob", "london", "paris");
  auto m = engine_->Call("manifest", {{}});
  ASSERT_TRUE(m.ok());
  ASSERT_EQ(m->size(), 2u);
  EXPECT_EQ(engine_->terms().ToString((*m)[0][0]), "af2");
}

TEST_P(TravelTest, RoutesViewIncludesConnections) {
  auto r = engine_->Query("route(london, rome, via(A, B), P)");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->rows.size(), 2u);  // af2+af3 and ba1+af3
  // Cheapest connection: af2 (90) + af3 (80) = 170 < lh4 direct (250).
  auto cheapest = engine_->Query(
      "route(london, rome, R, P) & P = min(P)");
  ASSERT_TRUE(cheapest.ok());
  ASSERT_EQ(cheapest->rows.size(), 1u);
  EXPECT_EQ(engine_->terms().ToString(cheapest->rows[0][0]),
            "via(af2,af3)");
}

TEST_P(TravelTest, StateSurvivesPersistence) {
  Book("ada", "london", "paris");
  const std::string path = testing::TempDir() + "/travel_edb.facts";
  ASSERT_TRUE(engine_->SaveEdbFile(path).ok());

  EngineOptions opts;
  opts.exec.strategy = GetParam();
  Engine engine2(opts);
  ASSERT_TRUE(engine2.LoadProgram(kTravel).ok());
  // Drop the module-fact copies, then restore the saved state.
  ASSERT_TRUE(
      engine2.ExecuteStatement("booking(R,P,I) -= booking(R,P,I).").ok());
  ASSERT_TRUE(engine2.LoadEdbFile(path).ok());
  auto m = engine2.Call("manifest", {{}});
  ASSERT_TRUE(m.ok());
  ASSERT_EQ(m->size(), 1u);
  EXPECT_EQ(engine2.terms().ToString((*m)[0][1]), "ada");
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, TravelTest,
    ::testing::Values(ExecOptions::Strategy::kMaterialized,
                      ExecOptions::Strategy::kPipelined),
    [](const ::testing::TestParamInfo<ExecOptions::Strategy>& info) {
      return info.param == ExecOptions::Strategy::kMaterialized
                 ? "Materialized"
                 : "Pipelined";
    });

}  // namespace
}  // namespace gluenail
