/// \file fault_injection_test.cc
/// \brief The robustness matrix: every injected failure must yield
/// (1) a clean error status, (2) a byte-identical pre-existing file, and
/// (3) a still-queryable engine.

#include "src/common/fault_injector.h"

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/api/engine.h"
#include "src/api/session.h"
#include "src/storage/persistence.h"

namespace gluenail {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream out;
  out << is.rdbuf();
  return out.str();
}

/// A recursive program whose fixpoint materializes enough tuples for the
/// budget guardrails to trip within the first iterations.
constexpr char kChainProgram[] = R"(
module m;
edb edge(X,Y);
path(X,Y) :- edge(X,Y).
path(X,Z) :- path(X,Y) & edge(Y,Z).
end
)";

void AddChain(Engine* engine, int n) {
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(
        engine->AddFact(StrCat("edge(", i, ",", i + 1, ").")).ok());
  }
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Instance().Disarm(); }
  void TearDown() override { FaultInjector::Instance().Disarm(); }
};

// --- Crash-safe persistence matrix -----------------------------------------

/// For each failable save operation: arm the injector, assert the save
/// errors, assert the previously saved file is byte-identical, assert the
/// engine still answers queries, then disarm and assert the save succeeds.
TEST_F(FaultInjectionTest, SaveFailureMatrixLeavesPreviousFileIntact) {
  const std::string path =
      testing::TempDir() + "/gluenail_fault_save.facts";
  for (FaultOp op : {FaultOp::kWrite, FaultOp::kFsync, FaultOp::kRename}) {
    SCOPED_TRACE(StrCat("op=", FaultOpName(op)));
    ::unlink(path.c_str());
    Engine engine;
    ASSERT_TRUE(engine.AddFact("edge(1,2).").ok());
    ASSERT_TRUE(engine.SaveEdbFile(path).ok());
    const std::string baseline = ReadFile(path);
    ASSERT_FALSE(baseline.empty());

    // Mutate so the failed save would have written different content.
    ASSERT_TRUE(engine.AddFact("edge(2,3).").ok());
    FaultInjector::Instance().ArmNth(op, 1);
    Status st = engine.SaveEdbFile(path);
    EXPECT_TRUE(st.IsIoError()) << st;
    EXPECT_NE(st.message().find("injected fault"), std::string::npos) << st;
    EXPECT_EQ(FaultInjector::Instance().injected(op), 1u);
    FaultInjector::Instance().Disarm();

    // (2) The pre-existing file is byte-identical.
    EXPECT_EQ(ReadFile(path), baseline);

    // (3) The engine still serves queries and writes.
    Result<Engine::QueryResult> q = engine.Query("edge(X,Y)");
    ASSERT_TRUE(q.ok()) << q.status();
    EXPECT_EQ(q->rows.size(), 2u);

    // Disarmed retry succeeds and the new content lands.
    ASSERT_TRUE(engine.SaveEdbFile(path).ok());
    EXPECT_NE(ReadFile(path), baseline);
    TermPool pool2;
    Database db2(&pool2);
    ASSERT_TRUE(LoadDatabaseFromFile(&db2, path).ok());
    Relation* edge = db2.Find(pool2.MakeSymbol("edge"), 2);
    ASSERT_NE(edge, nullptr);
    EXPECT_EQ(edge->size(), 2u);
  }
  ::unlink(path.c_str());
}

TEST_F(FaultInjectionTest, SaveFailureLeavesNoTempFileBehind) {
  const std::string dir = testing::TempDir() + "/gluenail_fault_tmpdir";
  ::mkdir(dir.c_str(), 0755);
  const std::string path = dir + "/edb.facts";
  Engine engine;
  ASSERT_TRUE(engine.AddFact("edge(1,2).").ok());
  FaultInjector::Instance().ArmNth(FaultOp::kFsync, 1);
  EXPECT_FALSE(engine.SaveEdbFile(path).ok());
  FaultInjector::Instance().Disarm();
  // Nothing in the directory: neither the target nor a temp file.
  std::vector<std::string> entries;
  if (DIR* d = ::opendir(dir.c_str())) {
    while (struct dirent* e = ::readdir(d)) {
      std::string name = e->d_name;
      if (name != "." && name != "..") entries.push_back(name);
    }
    ::closedir(d);
  }
  EXPECT_TRUE(entries.empty())
      << "unexpected leftover: " << Join(entries, ", ");
}

TEST_F(FaultInjectionTest, SeededScheduleIsDeterministic) {
  FaultInjector& fi = FaultInjector::Instance();
  auto run = [&](uint64_t seed) {
    fi.Disarm();
    fi.ArmSeeded(seed, 3);
    std::vector<bool> draws;
    for (int i = 0; i < 64; ++i) draws.push_back(fi.ShouldFail(FaultOp::kWrite));
    fi.Disarm();
    return draws;
  };
  std::vector<bool> a = run(42);
  std::vector<bool> b = run(42);
  std::vector<bool> c = run(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
}

/// Whole-save sweep under a seeded schedule: whatever fails, the invariant
/// holds — either the save succeeded and the file is the new content, or
/// it failed and the file is byte-identical to the baseline.
TEST_F(FaultInjectionTest, SeededSaveSweepKeepsInvariant) {
  const std::string path =
      testing::TempDir() + "/gluenail_fault_sweep.facts";
  ::unlink(path.c_str());
  Engine engine;
  AddChain(&engine, 50);
  ASSERT_TRUE(engine.SaveEdbFile(path).ok());
  const std::string baseline = ReadFile(path);
  ASSERT_TRUE(engine.AddFact("edge(100,101).").ok());

  int failures = 0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    FaultInjector::Instance().Disarm();
    FaultInjector::Instance().ArmSeeded(seed, 2);
    Status st = engine.SaveEdbFile(path);
    FaultInjector::Instance().Disarm();
    if (st.ok()) {
      EXPECT_NE(ReadFile(path), baseline);
      // Reset the on-disk state for the next round.
      std::ofstream(path, std::ios::binary).write(baseline.data(),
                                                  baseline.size());
    } else {
      ++failures;
      EXPECT_EQ(ReadFile(path), baseline) << "seed " << seed;
    }
  }
  EXPECT_GT(failures, 0) << "period-2 schedule never fired";
  ::unlink(path.c_str());
}

// --- Torn files: strict vs salvage -----------------------------------------

class TornFileTest : public FaultInjectionTest {
 protected:
  TornFileTest() : db_(&pool_) {}

  /// Saves two relations and corrupts one byte inside the edge section.
  std::string MakeTornFile() {
    Database good(&pool_);
    Relation* edge = good.GetOrCreate(pool_.MakeSymbol("edge"), 2);
    edge->Insert(Tuple{pool_.MakeInt(1), pool_.MakeInt(2)});
    edge->Insert(Tuple{pool_.MakeInt(2), pool_.MakeInt(3)});
    Relation* name = good.GetOrCreate(pool_.MakeSymbol("name"), 1);
    name->Insert(Tuple{pool_.MakeSymbol("ok")});
    std::string text = SerializeDatabase(good);
    // Corrupt a digit inside an edge fact, leaving line structure intact.
    size_t at = text.find("edge(1,2).");
    EXPECT_NE(at, std::string::npos);
    text[at + 5] = '9';
    return text;
  }

  TermPool pool_;
  Database db_;
};

TEST_F(TornFileTest, StrictLoadFailsAndLeavesDatabaseUntouched) {
  db_.GetOrCreate(pool_.MakeSymbol("keep"), 1)
      ->Insert(Tuple{pool_.MakeInt(7)});
  std::istringstream in(MakeTornFile());
  Status st = LoadDatabase(&db_, in);
  EXPECT_TRUE(st.IsIoError()) << st;
  // All-or-nothing: nothing from the torn file, existing data intact.
  EXPECT_EQ(db_.num_relations(), 1u);
  EXPECT_NE(db_.Find(pool_.MakeSymbol("keep"), 1), nullptr);
}

TEST_F(TornFileTest, SalvageKeepsGoodRelationsAndReportsDrops) {
  std::istringstream in(MakeTornFile());
  LoadOptions opts;
  opts.recovery = RecoveryMode::kSalvage;
  Result<LoadReport> report = LoadDatabase(&db_, in, opts);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->relations_loaded, 1u);
  EXPECT_EQ(report->sections_dropped, 1u);
  ASSERT_EQ(report->dropped.size(), 1u);
  EXPECT_NE(report->dropped[0].find("edge/2"), std::string::npos);
  // The good relation survived; the corrupted one was dropped whole.
  Relation* name = db_.Find(pool_.MakeSymbol("name"), 1);
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->size(), 1u);
  EXPECT_EQ(db_.Find(pool_.MakeSymbol("edge"), 2), nullptr);
}

TEST_F(TornFileTest, SalvageOfTruncatedFileKeepsCompleteSections) {
  Database good(&pool_);
  Relation* a = good.GetOrCreate(pool_.MakeSymbol("alpha"), 1);
  a->Insert(Tuple{pool_.MakeInt(1)});
  Relation* z = good.GetOrCreate(pool_.MakeSymbol("zeta"), 1);
  z->Insert(Tuple{pool_.MakeInt(1)});
  z->Insert(Tuple{pool_.MakeInt(2)});
  std::string text = SerializeDatabase(good);
  // Tear the file mid-way through the last section (crash during write of
  // a non-atomic saver — exactly what the atomic rename prevents).
  std::string torn = text.substr(0, text.rfind("zeta(2)."));

  std::istringstream strict_in(torn);
  EXPECT_TRUE(LoadDatabase(&db_, strict_in).IsIoError());

  LoadOptions opts;
  opts.recovery = RecoveryMode::kSalvage;
  std::istringstream in(torn);
  Result<LoadReport> report = LoadDatabase(&db_, in, opts);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->relations_loaded, 1u);
  EXPECT_EQ(report->sections_dropped, 1u);
  EXPECT_NE(db_.Find(pool_.MakeSymbol("alpha"), 1), nullptr);
  EXPECT_EQ(db_.Find(pool_.MakeSymbol("zeta"), 1), nullptr);
}

// --- Query guardrails -------------------------------------------------------

struct ModeParam {
  NailMode mode;
  const char* name;
};

class GuardrailTest : public FaultInjectionTest,
                      public ::testing::WithParamInterface<ModeParam> {
 protected:
  std::unique_ptr<Engine> MakeEngine(int chain) {
    EngineOptions opts;
    opts.nail_mode = GetParam().mode;
    auto engine = std::make_unique<Engine>(opts);
    EXPECT_TRUE(engine->LoadProgram(kChainProgram).ok());
    AddChain(engine.get(), chain);
    return engine;
  }
};

TEST_P(GuardrailTest, ExpiredDeadlineCancelsQuery) {
  std::unique_ptr<Engine> engine = MakeEngine(200);
  QueryOptions opts;
  opts.deadline = Deadline::After(std::chrono::nanoseconds(0));
  Result<Engine::QueryResult> r = engine->Query("path(0,Y)", opts);
  EXPECT_TRUE(r.status().IsCancelled()) << r.status();
  // The engine recovers fully: the same query without a deadline works.
  Result<Engine::QueryResult> ok = engine->Query("path(0,Y)");
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(ok->rows.size(), 200u);
}

TEST_P(GuardrailTest, PreCancelledTokenCancelsQuery) {
  std::unique_ptr<Engine> engine = MakeEngine(50);
  QueryOptions opts;
  opts.cancel = CancelToken::Create();
  opts.cancel.RequestCancel();
  Result<Engine::QueryResult> r = engine->Query("path(0,Y)", opts);
  EXPECT_TRUE(r.status().IsCancelled()) << r.status();
  Result<Engine::QueryResult> ok = engine->Query("path(0,Y)");
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(ok->rows.size(), 50u);
}

TEST_P(GuardrailTest, CancelFromAnotherThreadAborts) {
  std::unique_ptr<Engine> engine = MakeEngine(400);
  QueryOptions opts;
  opts.cancel = CancelToken::Create();
  std::thread canceller([token = opts.cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    token.RequestCancel();
  });
  // Either the query finishes before the cancel lands (fine) or it is
  // aborted with Cancelled — never anything else.
  Result<Engine::QueryResult> r = engine->Query("path(0,Y)", opts);
  canceller.join();
  if (!r.ok()) {
    EXPECT_TRUE(r.status().IsCancelled()) << r.status();
  }
  Result<Engine::QueryResult> ok = engine->Query("path(0,Y)");
  ASSERT_TRUE(ok.ok()) << ok.status();
}

TEST_P(GuardrailTest, TupleBudgetAbortsRunawayQuery) {
  std::unique_ptr<Engine> engine = MakeEngine(300);  // path/2 closes to ~45k tuples
  QueryOptions opts;
  opts.limits.max_tuples = 1000;
  Result<Engine::QueryResult> r = engine->Query("path(0,Y)", opts);
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status();
  // Unguarded retry succeeds with the full answer.
  Result<Engine::QueryResult> ok = engine->Query("path(0,Y)");
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(ok->rows.size(), 300u);
}

TEST_P(GuardrailTest, ArenaByteBudgetAbortsRunawayQuery) {
  std::unique_ptr<Engine> engine = MakeEngine(300);
  QueryOptions opts;
  opts.limits.max_arena_bytes = 4 * 1024;
  Result<Engine::QueryResult> r = engine->Query("path(0,Y)", opts);
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status();
  Result<Engine::QueryResult> ok = engine->Query("path(0,Y)");
  ASSERT_TRUE(ok.ok()) << ok.status();
}

TEST_P(GuardrailTest, SessionStaysUsableAfterGuardrailAborts) {
  std::unique_ptr<Engine> engine = MakeEngine(100);
  Session session = engine->OpenSession();
  // Bring the NAIL! state fresh via an unguarded read first.
  Result<Engine::QueryResult> warm = session.Query("path(0,Y)");
  ASSERT_TRUE(warm.ok()) << warm.status();

  QueryOptions cancelled;
  cancelled.cancel = CancelToken::Create();
  cancelled.cancel.RequestCancel();
  EXPECT_TRUE(session.Query("path(0,Y)", cancelled).status().IsCancelled());

  QueryOptions deadline;
  deadline.deadline = Deadline::After(std::chrono::nanoseconds(0));
  EXPECT_TRUE(session.Query("path(0,Y)", deadline).status().IsCancelled());

  // The shared lock was released cleanly each time: reads and writes on
  // the same engine still work.
  Result<Engine::QueryResult> again = session.Query("path(0,Y)");
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->rows.size(), 100u);
  EXPECT_TRUE(session.AddFact("edge(500,501).").ok());
  Result<Engine::QueryResult> after = session.Query("path(500,Y)");
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->rows.size(), 1u);
}

TEST_P(GuardrailTest, MagicQueryHonorsDeadline) {
  std::unique_ptr<Engine> engine = MakeEngine(200);
  QueryOptions opts;
  opts.strategy = QueryStrategy::kMagic;
  opts.deadline = Deadline::After(std::chrono::nanoseconds(0));
  Result<Engine::QueryResult> r = engine->Query("path(0,Y)", opts);
  EXPECT_TRUE(r.status().IsCancelled()) << r.status();
  QueryOptions plain;
  plain.strategy = QueryStrategy::kMagic;
  Result<Engine::QueryResult> ok = engine->Query("path(0,Y)", plain);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(ok->rows.size(), 200u);
}

TEST_P(GuardrailTest, InjectedAllocFailureSurfacesAsResourceExhausted) {
  std::unique_ptr<Engine> engine = MakeEngine(200);
  FaultInjector::Instance().ArmNth(FaultOp::kAlloc, 2);
  Result<Engine::QueryResult> r = engine->Query("path(0,Y)");
  FaultInjector::Instance().Disarm();
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status();
  // The failed materialization was memo-invalidated: the retry recomputes
  // from scratch and returns the complete answer.
  Result<Engine::QueryResult> ok = engine->Query("path(0,Y)");
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(ok->rows.size(), 200u);
}

// --- Row-scan budget (max_rows_scanned) -------------------------------------

/// An engine whose dup/2 relation holds \p n rows all sharing first-column
/// key 1: a keyed probe on that key walks an n-row index chain, the
/// degenerate shape the row-scan budget exists to catch.
std::unique_ptr<Engine> MakeHotKeyEngine(int n, IndexPolicy policy) {
  EngineOptions opts;
  opts.index_policy = policy;
  auto engine = std::make_unique<Engine>(opts);
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(engine->AddFact(StrCat("dup(1,", i, ").")).ok());
  }
  return engine;
}

TEST_F(FaultInjectionTest, RowScanBudgetChargesIndexProbeChains) {
  // Under kAlwaysIndex the keyed match never scans: every row it visits
  // comes from the index probe chain. Before probe chains were charged,
  // this query sailed under any max_rows_scanned.
  std::unique_ptr<Engine> engine =
      MakeHotKeyEngine(6000, IndexPolicy::kAlwaysIndex);
  QueryOptions opts;
  opts.limits.max_rows_scanned = 1000;
  Result<Engine::QueryResult> r = engine->Query("dup(1,Y)", opts);
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status();
  // The abort really came from the index path, not a fallback scan.
  EXPECT_GT(engine->storage_stats().index_probe_rows, 0u);
  EXPECT_EQ(engine->storage_stats().scan_rows, 0u);
  // Unguarded retry returns the full answer.
  Result<Engine::QueryResult> ok = engine->Query("dup(1,Y)");
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(ok->rows.size(), 6000u);
}

TEST_F(FaultInjectionTest, RowScanBudgetAbortsFullScans) {
  std::unique_ptr<Engine> engine =
      MakeHotKeyEngine(6000, IndexPolicy::kNeverIndex);
  QueryOptions opts;
  opts.limits.max_rows_scanned = 1000;
  // Unkeyed goal: a full scan of all 6000 rows, charged row by row.
  Result<Engine::QueryResult> r = engine->Query("dup(X,Y) & Y > 2", opts);
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status();
  Result<Engine::QueryResult> ok = engine->Query("dup(X,Y) & Y > 2");
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(ok->rows.size(), 5997u);
}

TEST_F(FaultInjectionTest, RowScanBudgetAdmitsQueriesUnderTheLimit) {
  std::unique_ptr<Engine> engine =
      MakeHotKeyEngine(100, IndexPolicy::kAlwaysIndex);
  QueryOptions opts;
  opts.limits.max_rows_scanned = 100000;
  Result<Engine::QueryResult> r = engine->Query("dup(1,Y)", opts);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->rows.size(), 100u);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, GuardrailTest,
    ::testing::Values(ModeParam{NailMode::kCompiledGlue, "compiled"},
                      ModeParam{NailMode::kDirect, "direct"}),
    [](const ::testing::TestParamInfo<ModeParam>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace gluenail
