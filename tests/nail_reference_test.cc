/// Differential testing of the NAIL! engine against an independent
/// brute-force Datalog evaluator implemented here from first principles
/// (naive fixpoint over explicit substitution enumeration — no shared
/// code with the engine). Random positive programs over random EDBs must
/// agree in all three engine modes.

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>

#include "src/api/engine.h"

namespace gluenail {
namespace {

// ---------------------------------------------------------------------------
// Reference evaluator: predicates are strings, constants are ints.
// ---------------------------------------------------------------------------

using RefTuple = std::vector<int>;
using RefRelation = std::set<RefTuple>;
using RefDb = std::map<std::string, RefRelation>;

struct RefAtom {
  std::string pred;
  // Each argument is a variable name ("X") or a constant (index < 0 in
  // vars -> use constant).
  std::vector<std::string> vars;   // empty string => use constant
  std::vector<int> consts;
};

struct RefRule {
  RefAtom head;
  std::vector<RefAtom> body;
};

/// Enumerates substitutions satisfying body[i..] and inserts head tuples.
void Derive(const RefRule& rule, size_t i,
            std::map<std::string, int>* binding, const RefDb& db,
            RefRelation* out) {
  if (i == rule.body.size()) {
    RefTuple t;
    for (size_t a = 0; a < rule.head.vars.size(); ++a) {
      t.push_back(rule.head.vars[a].empty() ? rule.head.consts[a]
                                            : binding->at(rule.head.vars[a]));
    }
    out->insert(std::move(t));
    return;
  }
  const RefAtom& atom = rule.body[i];
  auto it = db.find(atom.pred);
  if (it == db.end()) return;
  for (const RefTuple& t : it->second) {
    std::vector<std::pair<std::string, int>> added;
    bool ok = true;
    for (size_t a = 0; a < atom.vars.size() && ok; ++a) {
      if (atom.vars[a].empty()) {
        ok = t[a] == atom.consts[a];
      } else {
        auto [pos, inserted] = binding->emplace(atom.vars[a], t[a]);
        if (inserted) {
          added.emplace_back(atom.vars[a], t[a]);
        } else {
          ok = pos->second == t[a];
        }
      }
    }
    if (ok) Derive(rule, i + 1, binding, db, out);
    for (auto& [k, v] : added) binding->erase(k);
  }
}

/// Naive fixpoint to saturation.
RefDb RefEvaluate(const std::vector<RefRule>& rules, RefDb db) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const RefRule& rule : rules) {
      RefRelation derived;
      std::map<std::string, int> binding;
      Derive(rule, 0, &binding, db, &derived);
      RefRelation& target = db[rule.head.pred];
      for (const RefTuple& t : derived) {
        if (target.insert(t).second) changed = true;
      }
    }
  }
  return db;
}

// ---------------------------------------------------------------------------
// Random program generation (shared between engine source text and the
// reference structures).
// ---------------------------------------------------------------------------

struct RandomProgram {
  std::vector<RefRule> rules;
  RefDb edb;
  std::vector<std::string> idb_preds;
  std::string source;  // the same program in NAIL! syntax
};

RandomProgram MakeRandomProgram(uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> small(0, 5);
  RandomProgram out;

  // EDB: two binary relations with random facts over a small domain.
  std::vector<std::string> edb_preds{"e1", "e2"};
  std::string facts;
  for (const std::string& p : edb_preds) {
    int n = 6 + small(rng);
    for (int i = 0; i < n; ++i) {
      int a = small(rng), b = small(rng);
      out.edb[p].insert({a, b});
    }
    for (const RefTuple& t : out.edb[p]) {
      facts += StrCat(p, "(", t[0], ",", t[1], ").\n");
    }
  }

  // IDB: 2-3 binary predicates, each with 1-3 rules; bodies of 1-3 atoms
  // over EDB and already-declared IDB preds (allowing recursion).
  int num_idb = 2 + small(rng) % 2;
  for (int p = 0; p < num_idb; ++p) {
    out.idb_preds.push_back(StrCat("p", p));
  }
  const std::vector<std::string> var_names{"X", "Y", "Z", "W"};
  std::string rules_src;
  for (int p = 0; p < num_idb; ++p) {
    int num_rules = 1 + small(rng) % 3;
    for (int r = 0; r < num_rules; ++r) {
      RefRule rule;
      rule.head.pred = out.idb_preds[static_cast<size_t>(p)];
      int body_len = 1 + small(rng) % 3;
      std::vector<std::string> bound;  // variables bound so far
      std::string body_src;
      for (int b = 0; b < body_len; ++b) {
        RefAtom atom;
        // Pick a predicate: EDB always allowed; IDB preds <= p allowed
        // (self gives recursion) as long as something grounds the body —
        // keep it simple: first body atom is always EDB.
        if (b == 0 || small(rng) < 4) {
          atom.pred = edb_preds[static_cast<size_t>(small(rng) % 2)];
        } else {
          atom.pred =
              out.idb_preds[static_cast<size_t>(small(rng) % (p + 1))];
        }
        for (int a = 0; a < 2; ++a) {
          if (!bound.empty() && small(rng) < 3) {
            // Reuse a bound variable (creates joins).
            atom.vars.push_back(
                bound[static_cast<size_t>(small(rng)) % bound.size()]);
            atom.consts.push_back(0);
          } else if (small(rng) == 0) {
            atom.vars.push_back("");
            atom.consts.push_back(small(rng));
          } else {
            std::string v =
                var_names[static_cast<size_t>(small(rng)) %
                          var_names.size()];
            atom.vars.push_back(v);
            atom.consts.push_back(0);
          }
        }
        for (const std::string& v : atom.vars) {
          if (!v.empty() &&
              std::find(bound.begin(), bound.end(), v) == bound.end()) {
            bound.push_back(v);
          }
        }
        if (b != 0) body_src += " & ";
        body_src += StrCat(
            atom.pred, "(",
            atom.vars[0].empty() ? StrCat(atom.consts[0]) : atom.vars[0],
            ",",
            atom.vars[1].empty() ? StrCat(atom.consts[1]) : atom.vars[1],
            ")");
        rule.body.push_back(std::move(atom));
      }
      // Head: two arguments drawn from bound variables or constants
      // (range restriction holds by construction).
      for (int a = 0; a < 2; ++a) {
        if (!bound.empty() && small(rng) < 5) {
          rule.head.vars.push_back(
              bound[static_cast<size_t>(small(rng)) % bound.size()]);
          rule.head.consts.push_back(0);
        } else {
          rule.head.vars.push_back("");
          rule.head.consts.push_back(small(rng));
        }
      }
      rules_src += StrCat(
          rule.head.pred, "(",
          rule.head.vars[0].empty() ? StrCat(rule.head.consts[0])
                                    : rule.head.vars[0],
          ",",
          rule.head.vars[1].empty() ? StrCat(rule.head.consts[1])
                                    : rule.head.vars[1],
          ") :- ", body_src, ".\n");
      out.rules.push_back(std::move(rule));
    }
  }
  out.source = StrCat("module kb;\nedb e1(A,B), e2(A,B);\n", rules_src,
                      facts, "end\n");
  return out;
}

// ---------------------------------------------------------------------------

class NailReferenceTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, NailMode>> {};

TEST_P(NailReferenceTest, EngineMatchesBruteForce) {
  auto [seed, mode] = GetParam();
  RandomProgram prog = MakeRandomProgram(seed);

  RefDb expected = RefEvaluate(prog.rules, prog.edb);

  EngineOptions opts;
  opts.nail_mode = mode;
  Engine engine(opts);
  ASSERT_TRUE(engine.LoadProgram(prog.source).ok()) << prog.source;

  for (const std::string& pred : prog.idb_preds) {
    Result<Engine::QueryResult> r =
        engine.Query(StrCat(pred, "(QA, QB)"));
    ASSERT_TRUE(r.ok()) << pred << ": " << r.status() << "\n" << prog.source;
    RefRelation got;
    for (const Tuple& row : r->rows) {
      got.insert({static_cast<int>(engine.terms().IntValue(row[0])),
                  static_cast<int>(engine.terms().IntValue(row[1]))});
    }
    RefRelation want = expected.count(pred) ? expected[pred] : RefRelation{};
    EXPECT_EQ(got, want) << "predicate " << pred << " disagrees for seed "
                         << seed << "\n"
                         << prog.source;
  }
}

std::string RefTestName(
    const ::testing::TestParamInfo<std::tuple<uint32_t, NailMode>>& info) {
  static const char* const kModes[] = {"Direct", "CompiledGlue", "Naive"};
  return StrCat("seed", std::get<0>(info.param), "_",
                kModes[static_cast<int>(std::get<1>(info.param))]);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, NailReferenceTest,
    ::testing::Combine(::testing::Range(1u, 26u),
                       ::testing::Values(NailMode::kDirect,
                                         NailMode::kCompiledGlue,
                                         NailMode::kNaive)),
    RefTestName);

}  // namespace
}  // namespace gluenail
