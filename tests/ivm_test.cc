/// Incremental view maintenance suite (ctest -L ivm): differential
/// incremental-vs-full equality across insert-only / erase-only / mixed
/// batches on non-recursive, recursive (transitive closure over cyclic
/// graphs), stratified-negation, and HiLog-parameterized programs; both
/// execution strategies and the 4-thread parallel fixpoint; fallback
/// behavior (delta fraction, dropped captures, unstructured writes);
/// salvage-recovery invalidation; metrics/EXPLAIN surfacing; and
/// concurrent readers during refresh (the tsan target).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <set>
#include <thread>
#include <vector>

#include "src/api/engine.h"
#include "src/api/session.h"
#include "src/common/strings.h"

namespace gluenail {
namespace {

std::string Render(Engine* engine, const Result<Engine::QueryResult>& r) {
  EXPECT_TRUE(r.ok()) << r.status();
  if (!r.ok()) return "<error>";
  std::string out;
  for (size_t i = 0; i < r->rows.size(); ++i) {
    if (i != 0) out += ";";
    for (size_t j = 0; j < r->rows[i].size(); ++j) {
      if (j != 0) out += ",";
      out += engine->terms().ToString(r->rows[i][j]);
    }
  }
  return out;
}

/// Differential pair: the same program and batch sequence applied to an
/// engine with delta maintenance forced and to an always-recompute
/// oracle. After every batch, every probe goal must agree.
class IvmPair {
 public:
  explicit IvmPair(EngineOptions base = EngineOptions{}) {
    EngineOptions ivm = base;
    ivm.ivm_mode = IvmMode::kForce;
    EngineOptions full = base;
    full.ivm_mode = IvmMode::kOff;
    ivm_ = std::make_unique<Engine>(ivm);
    full_ = std::make_unique<Engine>(full);
  }

  void Load(std::string_view src) {
    ASSERT_TRUE(ivm_->LoadProgram(src).ok());
    ASSERT_TRUE(full_->LoadProgram(src).ok());
  }

  void Apply(const MutationBatch& batch) {
    Result<MutationBatch::ApplyReport> a = ivm_->ApplyBatch(batch);
    Result<MutationBatch::ApplyReport> b = full_->ApplyBatch(batch);
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(b.ok()) << b.status();
    EXPECT_EQ(a->inserted, b->inserted);
    EXPECT_EQ(a->erased, b->erased);
  }

  void Check(std::string_view goal) {
    EXPECT_EQ(Render(ivm_.get(), ivm_->Query(goal)),
              Render(full_.get(), full_->Query(goal)))
        << "goal " << goal << " diverged (last ivm refresh: "
        << ivm_->nail_engine()->last_refresh().mode << " fallback='"
        << ivm_->nail_engine()->last_refresh().fallback << "')";
  }

  Engine* ivm() { return ivm_.get(); }
  NailEngine* nail() { return ivm_->nail_engine(); }

 private:
  std::unique_ptr<Engine> ivm_;
  std::unique_ptr<Engine> full_;
};

MutationBatch Batch(std::initializer_list<std::string> inserts,
                    std::initializer_list<std::string> erases = {}) {
  MutationBatch b;
  for (const std::string& f : inserts) b.Insert(f);
  for (const std::string& f : erases) b.Erase(f);
  return b;
}

constexpr std::string_view kJoinProgram = R"(
module kb;
edb takes(S, C), offered(C, T);
enrolled(S, T) :- takes(S, C) & offered(C, T).
offered(cs99, databases).
offered(cs101, logic).
takes(wilson, cs99).
takes(green, cs99).
end
)";

constexpr std::string_view kTcProgram = R"(
module kb;
edb edge(X,Y);
path(X,Y) :- edge(X,Y).
path(X,Z) :- path(X,Y) & edge(Y,Z).
edge(1,2).
edge(2,3).
edge(3,1).
edge(4,5).
end
)";

// --- Counting (non-recursive SCCs) -----------------------------------------

TEST(IvmCounting, InsertOnlyBatches) {
  IvmPair pair;
  pair.Load(kJoinProgram);
  pair.Check("enrolled(S, T)");  // first (full) materialization
  pair.Apply(Batch({"takes(jones, cs101)"}));
  pair.Check("enrolled(S, T)");
  EXPECT_EQ(pair.nail()->last_refresh().mode, "counting");
  EXPECT_GE(pair.nail()->delta_refresh_count(), 1u);
  pair.Apply(Batch({"takes(smith, cs99)", "takes(smith, cs101)"}));
  pair.Check("enrolled(S, T)");
  EXPECT_EQ(pair.nail()->last_refresh().mode, "counting");
}

TEST(IvmCounting, EraseKeepsMultiplySupportedTuples) {
  IvmPair pair;
  pair.Load(kJoinProgram);
  // enrolled(wilson, databases) will be derivable through BOTH cs99 and
  // cs98: erasing one support must keep the tuple (the counting core).
  pair.Apply(Batch({"offered(cs98, databases)", "takes(wilson, cs98)"}));
  pair.Check("enrolled(S, T)");
  pair.Apply(Batch({}, {"takes(wilson, cs99)"}));
  pair.Check("enrolled(S, T)");
  EXPECT_EQ(pair.nail()->last_refresh().mode, "counting");
  // Now drop the last support; the tuple must go.
  pair.Apply(Batch({}, {"takes(wilson, cs98)"}));
  pair.Check("enrolled(S, T)");
  EXPECT_EQ(pair.nail()->last_refresh().mode, "counting");
}

TEST(IvmCounting, MixedBatch) {
  IvmPair pair;
  pair.Load(kJoinProgram);
  pair.Check("enrolled(S, T)");
  pair.Apply(Batch({"takes(jones, cs101)", "offered(cs77, ai)"},
                   {"takes(green, cs99)"}));
  pair.Check("enrolled(S, T)");
  pair.Apply(Batch({"takes(green, cs77)"}, {"offered(cs101, logic)"}));
  pair.Check("enrolled(S, T)");
}

TEST(IvmCounting, SelfJoinFallsBackCorrectly) {
  // grandparent reads parent in two positions; a parent delta changes
  // both at once, which single-delta counting cannot patch — the refresh
  // must fall back and still be right.
  IvmPair pair;
  pair.Load(R"(
module kb;
edb parent(X,Y);
grandparent(X,Z) :- parent(X,Y) & parent(Y,Z).
parent(abe, homer).
parent(homer, bart).
end
)");
  pair.Check("grandparent(X, Z)");
  pair.Apply(Batch({"parent(homer, lisa)"}));
  pair.Check("grandparent(X, Z)");
  EXPECT_EQ(pair.nail()->last_refresh().mode, "full");
  EXPECT_EQ(pair.nail()->last_refresh().fallback, "counting-multi-delta");
}

// --- DRed (recursive SCCs) -------------------------------------------------

TEST(IvmDred, InsertOnlyOnCyclicGraph) {
  IvmPair pair;
  pair.Load(kTcProgram);
  pair.Check("path(X, Y)");
  pair.Apply(Batch({"edge(5,6)"}));
  pair.Check("path(X, Y)");
  EXPECT_EQ(pair.nail()->last_refresh().mode, "dred");
  // Fuse the components: connects {4,5,6} into the cycle's reach.
  pair.Apply(Batch({"edge(3,4)"}));
  pair.Check("path(X, Y)");
}

TEST(IvmDred, EraseBreaksCycle) {
  IvmPair pair;
  pair.Load(kTcProgram);
  pair.Check("path(X, Y)");
  // Breaking the 3-cycle must over-delete and NOT rederive the cyclic
  // tuples (the classic DRed trap: every cycle tuple "supports" the
  // others).
  pair.Apply(Batch({}, {"edge(3,1)"}));
  pair.Check("path(X, Y)");
  EXPECT_EQ(pair.nail()->last_refresh().mode, "dred");
}

TEST(IvmDred, EraseWithAlternativeDerivationRederives) {
  IvmPair pair;
  pair.Load(kTcProgram);
  // Diamond: 10 -> 11 -> 13, 10 -> 12 -> 13. Deleting one arm must keep
  // 10~>13 via the rederivation pass.
  pair.Apply(Batch({"edge(10,11)", "edge(11,13)", "edge(10,12)",
                    "edge(12,13)"}));
  pair.Check("path(X, Y)");
  pair.Apply(Batch({}, {"edge(11,13)"}));
  pair.Check("path(X, Y)");
  EXPECT_EQ(pair.nail()->last_refresh().mode, "dred");
}

TEST(IvmDred, MixedBatchesOnCycle) {
  IvmPair pair;
  pair.Load(kTcProgram);
  pair.Check("path(X, Y)");
  pair.Apply(Batch({"edge(5,1)"}, {"edge(2,3)"}));
  pair.Check("path(X, Y)");
  pair.Apply(Batch({"edge(2,3)", "edge(3,6)"}, {"edge(4,5)", "edge(3,1)"}));
  pair.Check("path(X, Y)");
}

// --- Stratified negation ---------------------------------------------------

TEST(IvmNegation, NegatedRelationChangeFallsBackCorrectly) {
  IvmPair pair;
  pair.Load(R"(
module kb;
edb node(X), edge(X,Y);
reach(Y) :- edge(1,Y).
reach(Z) :- reach(Y) & edge(Y,Z).
isolated(X) :- node(X) & !reach(X).
node(1). node(2). node(3). node(4).
edge(1,2).
edge(2,3).
end
)");
  pair.Check("isolated(X)");
  // edge feeds reach, and reach is negated in isolated: the delta refresh
  // must refuse to push deltas through the negation and recompute.
  pair.Apply(Batch({"edge(3,4)"}));
  pair.Check("isolated(X)");
  pair.Check("reach(X)");
  pair.Apply(Batch({}, {"edge(2,3)"}));
  pair.Check("isolated(X)");
  pair.Check("reach(X)");
}

TEST(IvmNegation, UntouchedNegationStaysIncremental) {
  IvmPair pair;
  pair.Load(R"(
module kb;
edb person(X), banned(X), likes(X,Y);
ok_likes(X,Y) :- likes(X,Y) & person(X) & !banned(X).
person(a). person(b).
banned(b).
likes(a, pizza).
likes(b, pizza).
end
)");
  pair.Check("ok_likes(X, Y)");
  // Only likes changes; banned (the negated relation) is untouched, so
  // counting applies.
  pair.Apply(Batch({"likes(a, pasta)"}, {"likes(a, pizza)"}));
  pair.Check("ok_likes(X, Y)");
  EXPECT_EQ(pair.nail()->last_refresh().mode, "counting");
}

// --- HiLog published instances ---------------------------------------------

TEST(IvmHiLog, PublishedInstancesArePatched) {
  IvmPair pair;
  pair.Load(R"(
module kb;
edb attends(S, C), class_subject(C, Subj);
students(ID)(Student) :- class_subject(ID, _) & attends(Student, ID).
class_subject(cs99, databases).
class_subject(cs101, logic).
attends(wilson, cs99).
attends(green, cs99).
attends(jones, cs101).
end
)");
  pair.Check("students(cs99)(S)");
  pair.Apply(Batch({"attends(smith, cs99)"}, {"attends(jones, cs101)"}));
  pair.Check("students(cs99)(S)");
  pair.Check("students(cs101)(S)");
  pair.Check("students(C)(S)");
  EXPECT_EQ(pair.nail()->last_refresh().mode, "counting");
}

// --- Execution strategies and the parallel fixpoint ------------------------

class IvmStrategyTest
    : public ::testing::TestWithParam<ExecOptions::Strategy> {};

TEST_P(IvmStrategyTest, TcMixedBatches) {
  EngineOptions base;
  base.exec.strategy = GetParam();
  IvmPair pair(base);
  pair.Load(kTcProgram);
  pair.Check("path(X, Y)");
  pair.Apply(Batch({"edge(5,6)", "edge(6,1)"}, {"edge(2,3)"}));
  pair.Check("path(X, Y)");
  pair.Apply(Batch({"edge(2,3)"}, {"edge(3,1)", "edge(6,1)"}));
  pair.Check("path(X, Y)");
  EXPECT_GE(pair.nail()->delta_refresh_count(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, IvmStrategyTest,
    ::testing::Values(ExecOptions::Strategy::kMaterialized,
                      ExecOptions::Strategy::kPipelined),
    [](const ::testing::TestParamInfo<ExecOptions::Strategy>& info) {
      return info.param == ExecOptions::Strategy::kMaterialized
                 ? "Materialized"
                 : "Pipelined";
    });

TEST(IvmParallel, FourThreadFixpoint) {
  EngineOptions base;
  base.num_threads = 4;
  IvmPair pair(base);
  pair.Load(kTcProgram);
  pair.Check("path(X, Y)");
  // A batch big enough that DRed's phase-3 fixpoint partitions its deltas
  // across the workers: a long chain grafted onto the cycle.
  std::vector<std::string> chain;
  for (int i = 0; i < 64; ++i) {
    chain.push_back(StrCat("edge(", 100 + i, ",", 101 + i, ")"));
  }
  chain.push_back("edge(3,100)");
  MutationBatch grow;
  for (const std::string& f : chain) grow.Insert(f);
  pair.Apply(grow);
  pair.Check("path(1, Y)");
  EXPECT_EQ(pair.nail()->last_refresh().mode, "dred");
  pair.Apply(Batch({}, {"edge(3,100)"}));
  pair.Check("path(1, Y)");
  pair.Check("path(X, Y)");
}

// --- Fallback guards -------------------------------------------------------

TEST(IvmFallback, AutoRecomputesWhenDeltaFractionExceeded) {
  EngineOptions ivm_opts;
  ivm_opts.ivm_mode = IvmMode::kAuto;
  Engine engine(ivm_opts);
  ASSERT_TRUE(engine.LoadProgram(kTcProgram).ok());
  ASSERT_TRUE(engine.Query("path(X,Y)").ok());
  // 4 live edge rows; the guard compares against max(live, 256), so 100
  // captured rows exceed 0.25 * 256.
  MutationBatch big;
  for (int i = 0; i < 100; ++i) big.Insert(StrCat("edge(", 200 + i, ",1)"));
  ASSERT_TRUE(engine.ApplyBatch(big).ok());
  Result<Engine::QueryResult> r = engine.Query("path(X,Y)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(engine.nail_engine()->last_refresh().mode, "full");
  EXPECT_EQ(engine.nail_engine()->last_refresh().fallback, "delta-fraction");
  EXPECT_GE(engine.nail_engine()->ivm_fallback_count(), 1u);
}

TEST(IvmFallback, DroppedCaptureRecomputes) {
  EngineOptions ivm_opts;
  ivm_opts.ivm_mode = IvmMode::kForce;
  ivm_opts.ivm_max_delta_rows = 4;  // overflow immediately
  Engine engine(ivm_opts);
  ASSERT_TRUE(engine.LoadProgram(kTcProgram).ok());
  ASSERT_TRUE(engine.Query("path(X,Y)").ok());
  MutationBatch big;
  for (int i = 0; i < 10; ++i) big.Insert(StrCat("edge(", 300 + i, ",1)"));
  ASSERT_TRUE(engine.ApplyBatch(big).ok());
  Result<Engine::QueryResult> r = engine.Query("path(X,Y)");
  ASSERT_TRUE(r.ok());
  // Cycle closure (9) + 4~>5 + each spoke reaching {1,2,3} (10 * 3).
  EXPECT_EQ(r->rows.size(), 9u + 1u + 3u * 10u);
  EXPECT_EQ(engine.nail_engine()->last_refresh().fallback, "delta-dropped");
}

TEST(IvmFallback, UnstructuredWriteIsCaughtByWatermark) {
  IvmPair pair;
  pair.Load(kTcProgram);
  pair.Check("path(X, Y)");
  pair.Apply(Batch({"edge(5,6)"}));
  pair.Check("path(X, Y)");
  EXPECT_GE(pair.nail()->delta_refresh_count(), 1u);
  // A Mutate() bypasses capture entirely; the version watermark must
  // force the next refresh to recompute rather than patch from a log
  // that missed this change.
  ASSERT_TRUE(pair.ivm()
                  ->Mutate([](Database* edb, Database*, TermPool* pool) {
                    TermId edge = pool->MakeSymbol("edge");
                    Relation* rel = edb->Find(edge, 2);
                    if (rel != nullptr) rel->Clear();
                    return Status::OK();
                  })
                  .ok());
  Result<Engine::QueryResult> r = pair.ivm()->Query("path(X,Y)");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());
  EXPECT_EQ(pair.nail()->last_refresh().mode, "full");
  EXPECT_EQ(pair.nail()->last_refresh().fallback, "stale-memo");
}

TEST(IvmFallback, OffModeNeverRunsDelta) {
  EngineOptions off;
  off.ivm_mode = IvmMode::kOff;
  Engine engine(off);
  ASSERT_TRUE(engine.LoadProgram(kTcProgram).ok());
  ASSERT_TRUE(engine.Query("path(X,Y)").ok());
  ASSERT_TRUE(engine.ApplyBatch(Batch({"edge(5,6)"})).ok());
  ASSERT_TRUE(engine.Query("path(X,Y)").ok());
  EXPECT_EQ(engine.nail_engine()->delta_refresh_count(), 0u);
  EXPECT_GE(engine.nail_engine()->full_refresh_count(), 2u);
}

// --- Recovery invalidation (the salvage regression) ------------------------

std::string FreshDir(const std::string& tag) {
  std::string tmpl = testing::TempDir() + "/gluenail_ivm_" + tag + "_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  char* got = ::mkdtemp(buf.data());
  EXPECT_NE(got, nullptr) << tmpl;
  return std::string(buf.data());
}

TEST(IvmRecovery, RecoverNeverServesPreRecoveryDeltas) {
  const std::string dir = FreshDir("salvage");
  EngineOptions opts;
  opts.ivm_mode = IvmMode::kForce;
  opts.data_dir = dir;
  opts.durability = DurabilityLevel::kSync;
  opts.wal_recovery = RecoveryMode::kSalvage;
  Engine engine(opts);
  ASSERT_TRUE(engine.Recover().ok());
  ASSERT_TRUE(engine.LoadProgram(kTcProgram).ok());
  ASSERT_TRUE(engine.Checkpoint().ok());  // program facts into the image
  ASSERT_TRUE(engine.ApplyBatch(Batch({"edge(5,6)"})).ok());
  ASSERT_TRUE(engine.Query("path(X,Y)").ok());  // rebases the delta log
  // Capture a pending delta the memo has NOT consumed yet...
  ASSERT_TRUE(engine.ApplyBatch(Batch({"edge(6,7)"})).ok());
  // ...then jump histories: recovery rebuilds the EDB from disk. The
  // pending delta describes the pre-recovery timeline; if it survived,
  // the next refresh could patch the memo into a state the recovered EDB
  // never derived.
  Result<RecoveryReport> boot = engine.Recover();
  ASSERT_TRUE(boot.ok()) << boot.status();
  Result<Engine::QueryResult> paths = engine.Query("path(X,Y)");
  ASSERT_TRUE(paths.ok());
  // Recovered EDB: the checkpointed program facts + both logged batches.
  // The refresh after recovery must run full (invalidated log), and the
  // result must be exactly the recovered EDB's closure.
  EXPECT_EQ(engine.nail_engine()->last_refresh().mode, "full");
  Result<std::vector<Tuple>> edges = engine.RelationContents("edge", 2);
  ASSERT_TRUE(edges.ok());
  EXPECT_EQ(edges->size(), 6u);  // 4 program facts + 2 batches
  // Cycle closure (9) + the 6 pairs of the 4->5->6->7 chain.
  EXPECT_EQ(paths->rows.size(), 9u + 6u);
}

TEST(IvmRecovery, LoadEdbFileInvalidatesDeltas) {
  const std::string dir = FreshDir("load");
  const std::string file = dir + "/dump.facts";
  EngineOptions opts;
  opts.ivm_mode = IvmMode::kForce;
  Engine engine(opts);
  ASSERT_TRUE(engine.LoadProgram(kTcProgram).ok());
  ASSERT_TRUE(engine.Query("path(X,Y)").ok());
  ASSERT_TRUE(engine.SaveEdbFile(file).ok());
  // Pending captured delta...
  ASSERT_TRUE(engine.ApplyBatch(Batch({"edge(5,6)"})).ok());
  // ...followed by a bulk load (merge semantics: image facts join the
  // live EDB). The load bypassed capture wholesale, so even under kForce
  // the next refresh must recompute rather than patch from a log that
  // only saw the batch.
  ASSERT_TRUE(engine.LoadEdbFile(file).ok());
  Result<Engine::QueryResult> r = engine.Query("path(X,Y)");
  ASSERT_TRUE(r.ok());
  // Cycle closure (9) + 4~>5, 4~>6, 5~>6 from the appended edge.
  EXPECT_EQ(r->rows.size(), 12u);
  EXPECT_EQ(engine.nail_engine()->last_refresh().mode, "full");
}

// --- Observability ---------------------------------------------------------

TEST(IvmObs, MetricsExposeDeltaVsFullCounts) {
  IvmPair pair;
  pair.Load(kTcProgram);
  pair.Check("path(X, Y)");
  pair.Apply(Batch({"edge(5,6)"}));
  pair.Check("path(X, Y)");
  std::string metrics = pair.ivm()->DumpMetrics();
  EXPECT_NE(metrics.find("gluenail_nail_delta_refresh_total 1"),
            std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("gluenail_nail_full_refresh_total 1"),
            std::string::npos);
  EXPECT_NE(metrics.find("gluenail_nail_ivm_delta_rows_in_total"),
            std::string::npos);
}

TEST(IvmObs, ExplainAnalyzeShowsRefreshMode) {
  EngineOptions opts;
  opts.ivm_mode = IvmMode::kForce;
  Engine engine(opts);
  ASSERT_TRUE(engine.LoadProgram(kTcProgram).ok());
  ASSERT_TRUE(engine.Query("path(X,Y)").ok());
  ASSERT_TRUE(engine.ApplyBatch(Batch({"edge(5,6)"})).ok());
  ExplainOptions eo;
  eo.analyze = true;
  Result<std::string> out =
      engine.ExplainStatement("reached(Y) += path(1, Y).", eo);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_NE(out->find("nail refresh: mode=dred"), std::string::npos) << *out;
  EXPECT_NE(out->find("delta_rows_in=1"), std::string::npos) << *out;
  // The first ANALYZE *wrote* reached/1 — an ad-hoc statement the delta
  // log never saw — so the second one must show a watermark-forced full
  // recompute, not an incremental patch.
  Result<std::string> again =
      engine.ExplainStatement("reached(Y) += path(1, Y).", eo);
  ASSERT_TRUE(again.ok());
  EXPECT_NE(again->find("nail refresh: mode=full fallback=stale-memo"),
            std::string::npos)
      << *again;
}

TEST(IvmObs, SlowQueryLogRecordsRefreshMode) {
  EngineOptions opts;
  opts.ivm_mode = IvmMode::kForce;
  opts.slow_query_threshold = std::chrono::nanoseconds(1);  // log everything
  Engine engine(opts);
  ASSERT_TRUE(engine.LoadProgram(kTcProgram).ok());
  ASSERT_TRUE(engine.Query("path(X,Y)").ok());
  ASSERT_TRUE(engine.ApplyBatch(Batch({"edge(5,6)"})).ok());
  ASSERT_TRUE(engine.Query("path(X,Y)").ok());
  std::vector<SlowQueryEntry> entries = engine.slow_query_log().Entries();
  ASSERT_FALSE(entries.empty());
  bool found = false;
  for (const SlowQueryEntry& e : entries) {
    if (e.nail_refresh_mode == "dred") {
      found = true;
      EXPECT_EQ(e.nail_delta_rows_in, 1u);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_NE(engine.slow_query_log().Render().find("nail refresh"),
            std::string::npos);
}

// --- Concurrent readers during refresh (the tsan target) -------------------

TEST(IvmConcurrency, ReadersDuringDeltaRefresh) {
  EngineOptions opts;
  opts.ivm_mode = IvmMode::kForce;
  Engine engine(opts);
  ASSERT_TRUE(engine.LoadProgram(R"(
module kb;
edb edge(X,Y);
path(X,Y) :- edge(X,Y).
path(X,Z) :- path(X,Y) & edge(Y,Z).
edge(0,1).
end
)").ok());
  ASSERT_TRUE(engine.Query("path(X,Y)").ok());

  // Writer grows a 0->1->...->N chain one edge per batch. After batch k
  // the closure has (k+2)(k+1)/2 pairs; a reader must only ever observe
  // one of those sizes (refreshes run under the writer lock — no torn
  // counts).
  constexpr int kBatches = 24;
  std::set<size_t> valid;
  for (int k = 0; k <= kBatches; ++k) {
    valid.insert(static_cast<size_t>((k + 2) * (k + 1) / 2));
  }
  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      Session session = engine.OpenSession();
      while (!stop.load(std::memory_order_relaxed)) {
        Result<Engine::QueryResult> r = session.Query("path(X,Y)");
        if (!r.ok() || valid.count(r->rows.size()) == 0) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
        // Let shared ownership drop to zero between reads: four readers
        // querying back-to-back can starve the writer's exclusive lock
        // indefinitely under a reader-preferring rwlock.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }
  for (int k = 1; k <= kBatches; ++k) {
    MutationBatch b;
    b.Insert(StrCat("edge(", k, ",", k + 1, ")"));
    ASSERT_TRUE(engine.ApplyBatch(b).ok());
    Result<Engine::QueryResult> r = engine.Query("path(X,Y)");
    ASSERT_TRUE(r.ok());
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_GE(engine.nail_engine()->delta_refresh_count(), 1u);
}

}  // namespace
}  // namespace gluenail
