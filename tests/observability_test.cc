/// Observability tests (ctest -L obs): the metrics registry and its two
/// export formats, structured query tracing (span trees, Chrome export,
/// bounded rings), the slow-query log, and two cross-cutting invariants —
/// per-op trace rows must equal EXPLAIN ANALYZE actual rows on both
/// executor strategies, and the planner must pick a good join order on a
/// relation whose NDV sketches went through heavy erase churn.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "src/api/engine.h"
#include "src/api/session.h"
#include "src/obs/metrics.h"
#include "src/obs/slow_query.h"
#include "src/obs/trace.h"

namespace gluenail {
namespace {

// --- Metrics registry ----------------------------------------------------

TEST(MetricsTest, CountersGaugesAndPullMetricsRenderInBothFormats) {
  MetricsRegistry reg;
  Counter* c = reg.RegisterCounter("test_events_total", "events seen");
  Gauge* g = reg.RegisterGauge("test_depth", "current depth");
  c->Add(3);
  g->Set(-7);
  uint64_t pulled = 42;
  reg.RegisterPullCounter("test_pulled_total", "pulled on export",
                          [&pulled]() { return pulled; });

  std::string prom = reg.RenderPrometheus();
  EXPECT_NE(prom.find("# HELP test_events_total events seen"),
            std::string::npos);
  EXPECT_NE(prom.find("test_events_total 3"), std::string::npos);
  EXPECT_NE(prom.find("test_depth -7"), std::string::npos);
  EXPECT_NE(prom.find("test_pulled_total 42"), std::string::npos);

  pulled = 43;  // pull callbacks re-evaluate on every export
  std::string json = reg.RenderJson();
  EXPECT_NE(json.find("\"test_events_total\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test_pulled_total\",\"type\":\"counter\","
                      "\"value\":43"),
            std::string::npos);
}

TEST(MetricsTest, HistogramBucketsCountAndSum) {
  MetricsRegistry reg;
  Histogram* h = reg.RegisterHistogram("test_latency_ns", "latencies");
  h->Observe(1);
  h->Observe(1000);
  h->Observe(1000000);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_EQ(h->sum(), 1001001u);
  std::string prom = reg.RenderPrometheus();
  EXPECT_NE(prom.find("test_latency_ns_count 3"), std::string::npos);
  EXPECT_NE(prom.find("test_latency_ns_sum 1001001"), std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);
}

TEST(MetricsTest, EngineDumpCoversAllLayersAndCountsQueries) {
  Engine engine;
  ASSERT_TRUE(engine.AddFact("edge(1,2).").ok());
  ASSERT_TRUE(engine.Query("edge(X,Y)").ok());
  std::string prom = engine.DumpMetrics();
  // One representative metric per instrumented layer.
  for (const char* name :
       {"gluenail_queries_total", "gluenail_query_latency_ns",
        "gluenail_termpool_terms", "gluenail_storage_live_tuples",
        "gluenail_storage_scan_rows_total", "gluenail_exec_statements_total",
        "gluenail_planner_bodies_planned_total",
        "gluenail_persist_saves_total", "gluenail_nail_refreshes_total"}) {
    EXPECT_NE(prom.find(name), std::string::npos) << "missing " << name;
  }

  // gluenail_queries_total increments per query.
  auto count_of = [&](const std::string& dump) {
    size_t pos = dump.find("\ngluenail_queries_total ");
    EXPECT_NE(pos, std::string::npos);
    return std::stoull(dump.substr(pos + 24));
  };
  uint64_t before = count_of(engine.DumpMetrics());
  ASSERT_TRUE(engine.Query("edge(X,Y)").ok());
  EXPECT_EQ(count_of(engine.DumpMetrics()), before + 1);

  std::string json = engine.DumpMetrics(MetricsFormat::kJson);
  EXPECT_NE(json.find("\"gluenail_queries_total\""), std::string::npos);
}

// --- Tracing -------------------------------------------------------------

TEST(TraceTest, TracedQueryRecordsSpanTreeAndPlan) {
  Engine engine;
  ASSERT_TRUE(engine.AddFact("edge(1,2).").ok());
  ASSERT_TRUE(engine.AddFact("edge(2,3).").ok());
  EXPECT_EQ(engine.last_trace(), nullptr);

  QueryOptions opts;
  opts.trace = true;
  ASSERT_TRUE(engine.Query("edge(X,Y)", opts).ok());

  std::shared_ptr<const QueryTrace> trace = engine.last_trace();
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->query, "edge(X,Y)");
  EXPECT_FALSE(trace->spans.empty());
  EXPECT_FALSE(trace->plan.empty());

  std::string tree = trace->RenderTree();
  for (const char* span : {"query:parse", "query:plan", "query:execute",
                           "query:answers"}) {
    EXPECT_NE(tree.find(span), std::string::npos) << "missing " << span;
  }
  // The answers span carries the row count.
  bool found_rows = false;
  for (const TraceSpan& s : trace->spans) {
    if (s.name == "query:answers") {
      EXPECT_EQ(s.rows, 2u);
      found_rows = true;
    }
  }
  EXPECT_TRUE(found_rows);
}

TEST(TraceTest, UntracedQueriesLeaveNoTrace) {
  Engine engine;
  ASSERT_TRUE(engine.AddFact("p(1).").ok());
  ASSERT_TRUE(engine.Query("p(X)").ok());
  EXPECT_EQ(engine.last_trace(), nullptr);
}

TEST(TraceTest, ChromeExportIsWellFormedTraceEventJson) {
  Engine engine;
  ASSERT_TRUE(engine.AddFact("p(1).").ok());
  QueryOptions opts;
  opts.trace = true;
  ASSERT_TRUE(engine.Query("p(X)", opts).ok());
  std::shared_ptr<const QueryTrace> trace = engine.last_trace();
  ASSERT_NE(trace, nullptr);

  std::string json = trace->RenderChromeJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"query:execute\""), std::string::npos);
  // Balanced braces/brackets — cheap well-formedness proxy that catches
  // missing commas/terminators without a JSON parser dependency.
  int braces = 0, brackets = 0;
  for (char ch : json) {
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    if (ch == '[') ++brackets;
    if (ch == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(TraceTest, RingEvictsOldestBeyondCapacity) {
  EngineOptions eopts;
  eopts.trace_ring_capacity = 2;
  Engine engine(eopts);
  ASSERT_TRUE(engine.AddFact("p(1).").ok());
  QueryOptions opts;
  opts.trace = true;
  ASSERT_TRUE(engine.Query("p(1)", opts).ok());
  ASSERT_TRUE(engine.Query("p(X)", opts).ok());
  ASSERT_TRUE(engine.Query("p(Y)", opts).ok());
  std::vector<std::shared_ptr<const QueryTrace>> all =
      engine.trace_ring().All();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0]->query, "p(X)");
  EXPECT_EQ(all[1]->query, "p(Y)");
  EXPECT_EQ(engine.last_trace()->query, "p(Y)");
}

TEST(TraceTest, SessionTracesAreSessionPrivate) {
  Engine engine;
  ASSERT_TRUE(engine.AddFact("p(1).").ok());
  Session a = engine.OpenSession();
  Session b = engine.OpenSession();
  QueryOptions opts;
  opts.trace = true;
  ASSERT_TRUE(a.Query("p(X)", opts).ok());
  ASSERT_NE(a.last_trace(), nullptr);
  EXPECT_EQ(b.last_trace(), nullptr);
  // Session traces do not leak into the engine's ring either.
  EXPECT_EQ(engine.last_trace(), nullptr);
}

TEST(TraceTest, TopSpansByDurationOrdersAndTruncates) {
  std::vector<TraceSpan> spans(5);
  for (size_t i = 0; i < spans.size(); ++i) {
    spans[i].name = "s" + std::to_string(i);
    spans[i].dur_ns = (i + 1) * 100;
  }
  std::vector<std::pair<std::string, uint64_t>> top =
      TopSpansByDuration(spans, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, "s4");
  EXPECT_EQ(top[0].second, 500u);
  EXPECT_EQ(top[1].first, "s3");
  EXPECT_EQ(top[2].first, "s2");
}

// --- Slow-query log ------------------------------------------------------

TEST(SlowQueryTest, ArmedThresholdCapturesPlanReplansAndTopSpans) {
  EngineOptions eopts;
  eopts.slow_query_threshold = std::chrono::nanoseconds(1);  // everything
  Engine engine(eopts);
  ASSERT_TRUE(engine.AddFact("edge(1,2).").ok());
  // No QueryOptions::trace: the armed threshold alone must trace.
  ASSERT_TRUE(engine.Query("edge(X,Y)").ok());

  std::vector<SlowQueryEntry> entries = engine.slow_query_log().Entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].query, "edge(X,Y)");
  EXPECT_GT(entries[0].seconds, 0.0);
  EXPECT_FALSE(entries[0].plan.empty());
  EXPECT_FALSE(entries[0].top_spans.empty());
  EXPECT_LE(entries[0].top_spans.size(), 3u);
  EXPECT_EQ(engine.slow_query_log().total(), 1u);

  std::string render = engine.slow_query_log().Render();
  EXPECT_NE(render.find("edge(X,Y)"), std::string::npos);
}

TEST(SlowQueryTest, DisarmedThresholdCapturesNothing) {
  Engine engine;  // slow_query_threshold = 0
  ASSERT_TRUE(engine.AddFact("p(1).").ok());
  ASSERT_TRUE(engine.Query("p(X)").ok());
  EXPECT_TRUE(engine.slow_query_log().Entries().empty());
  EXPECT_EQ(engine.slow_query_log().total(), 0u);
}

TEST(SlowQueryTest, LogEvictsButTotalKeepsCounting) {
  SlowQueryLog log(2);
  for (int i = 0; i < 5; ++i) {
    SlowQueryEntry e;
    e.query = "q" + std::to_string(i);
    log.Record(std::move(e));
  }
  std::vector<SlowQueryEntry> entries = log.Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].query, "q3");
  EXPECT_EQ(entries[1].query, "q4");
  EXPECT_EQ(log.total(), 5u);
}

// --- EXPLAIN ANALYZE actual rows == trace span rows ----------------------

/// Extracts every "actual=N" row count from a rendered plan, in op order.
std::vector<uint64_t> ParseActualRows(const std::string& plan) {
  std::vector<uint64_t> rows;
  size_t pos = 0;
  while ((pos = plan.find("actual=", pos)) != std::string::npos) {
    pos += 7;
    rows.push_back(std::stoull(plan.substr(pos)));
  }
  return rows;
}

/// Extracts per-op row counts from the "opN:" marker spans, in op order.
std::vector<uint64_t> OpSpanRows(const QueryTrace& trace) {
  std::vector<uint64_t> rows;
  for (const TraceSpan& s : trace.spans) {
    if (s.name.size() > 2 && s.name[0] == 'o' && s.name[1] == 'p' &&
        s.name.find(':') != std::string::npos) {
      rows.push_back(s.rows);
    }
  }
  return rows;
}

class ExplainVsTraceTest
    : public ::testing::TestWithParam<ExecOptions::Strategy> {};

TEST_P(ExplainVsTraceTest, AnalyzeActualRowsEqualTraceSpanRows) {
  EngineOptions eopts;
  eopts.exec.strategy = GetParam();
  Engine engine(eopts);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        engine
            .AddFact("e(" + std::to_string(i) + "," +
                     std::to_string(i % 7) + ").")
            .ok());
  }
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine.AddFact("f(" + std::to_string(i) + ").").ok());
  }
  // `:=` clears the head first, so repeated runs are idempotent — the
  // EXPLAIN ANALYZE pass and the traced pass see identical inputs and must
  // report identical per-op actual rows.
  const std::string stmt = "r(X,Y) := e(X,Y) & f(Y).";

  ExplainOptions an;
  an.analyze = true;
  Result<std::string> plan = engine.ExplainStatement(stmt, an);
  ASSERT_TRUE(plan.ok()) << plan.status();
  std::vector<uint64_t> analyze_rows = ParseActualRows(*plan);
  ASSERT_FALSE(analyze_rows.empty());

  QueryOptions qopts;
  qopts.trace = true;
  ASSERT_TRUE(engine.ExecuteStatement(stmt, qopts).ok());
  std::shared_ptr<const QueryTrace> trace = engine.last_trace();
  ASSERT_NE(trace, nullptr);
  std::vector<uint64_t> span_rows = OpSpanRows(*trace);

  EXPECT_EQ(span_rows, analyze_rows);
  // The traced plan text must agree with EXPLAIN ANALYZE too.
  EXPECT_EQ(ParseActualRows(trace->plan), analyze_rows);
}

INSTANTIATE_TEST_SUITE_P(BothStrategies, ExplainVsTraceTest,
                         ::testing::Values(
                             ExecOptions::Strategy::kMaterialized,
                             ExecOptions::Strategy::kPipelined),
                         [](const auto& info) {
                           return info.param ==
                                          ExecOptions::Strategy::kMaterialized
                                      ? "Materialized"
                                      : "Pipelined";
                         });

// --- Planner A/B on a churned relation -----------------------------------

TEST(PlannerChurnTest, JoinOrderStaysGoodAfterEraseChurn) {
  Engine engine;
  Status s = engine.Mutate([](Database* edb, Database*, TermPool* pool) {
    Relation* a = edb->GetOrCreate(pool->MakeSymbol("a"), 1);
    for (int i = 0; i < 10; ++i) a->Insert(Tuple{pool->MakeInt(i)});
    Relation* mid = edb->GetOrCreate(pool->MakeSymbol("mid"), 2);
    for (int i = 0; i < 1000; ++i) {
      mid->Insert(Tuple{pool->MakeInt(i % 500), pool->MakeInt(i)});
    }
    // big/2 goes through heavy churn: 10k distinct keys inserted and
    // erased again, then 10k rows over just 5 keys. Before the staleness
    // fix the NDV sketch stayed saturated near 10k, making `big` look
    // ultra-selective (est ≈ 10 rows out) so the planner joined it before
    // `mid` — a 20000-row mistake at execution time.
    Relation* big = edb->GetOrCreate(pool->MakeSymbol("big"), 2);
    for (int i = 0; i < 10000; ++i) {
      big->Insert(Tuple{pool->MakeInt(i), pool->MakeInt(i)});
    }
    for (int i = 0; i < 10000; ++i) {
      big->Erase(Tuple{pool->MakeInt(i), pool->MakeInt(i)});
    }
    for (int i = 0; i < 10000; ++i) {
      big->Insert(Tuple{pool->MakeInt(i % 5), pool->MakeInt(i)});
    }
    return Status::OK();
  });
  ASSERT_TRUE(s.ok()) << s;

  // With fresh stats: est(mid after a) = 10 * 1000/500 = 20 rows, while
  // est(big after a) = 10 * 10000/5 = 20000 rows — mid must come first.
  Result<std::string> plan =
      engine.ExplainStatement("out(A,W) := a(A) & mid(A,W) & big(A,B).");
  ASSERT_TRUE(plan.ok()) << plan.status();
  size_t mid_pos = plan->find("mid");
  size_t big_pos = plan->find("big");
  ASSERT_NE(mid_pos, std::string::npos);
  ASSERT_NE(big_pos, std::string::npos);
  EXPECT_LT(mid_pos, big_pos)
      << "planner joined the churned relation first:\n" << *plan;
}

}  // namespace
}  // namespace gluenail
