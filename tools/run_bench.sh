#!/usr/bin/env bash
# Builds the benchmarks in Release mode and runs them, leaving one
# BENCH_<name>.json per benchmark in the repo root (or $BENCH_OUT_DIR).
#
# Usage: tools/run_bench.sh [bench_name ...]
#   tools/run_bench.sh                 # run every bench target
#   tools/run_bench.sh bench_storage   # run just one
#   tools/run_bench.sh bench_planner   # cost-based planning A/B
#                                      #   -> BENCH_planner.json
#   tools/run_bench.sh bench_observability
#                                      # tracing off/on + DumpMetrics
#                                      #   -> BENCH_observability.json
#   tools/run_bench.sh bench_server    # wire protocol vs in-process,
#                                      # 1..16 concurrent socket clients
#                                      #   -> BENCH_server.json
#   tools/run_bench.sh bench_vector    # batch vs tuple execution A/B at
#                                      # 10k/100k/1M rows
#                                      #   -> BENCH_vector.json
#   tools/run_bench.sh bench_wal       # durable commits/sec at 1..16
#                                      # writers per durability level,
#                                      # recovered state verified
#                                      #   -> BENCH_wal.json
#   tools/run_bench.sh bench_ivm       # incremental (counting/DRed) vs
#                                      # full memo refresh over a 1M-tuple
#                                      # closure, batch sizes 1/64/4096,
#                                      # results verified identical
#                                      #   -> BENCH_ivm.json
#   tools/run_bench.sh bench_repl      # read throughput on 1/2/4 WAL-
#                                      # tailing replicas vs the write-
#                                      # loaded primary, plus steady-
#                                      # state replication lag
#                                      #   -> BENCH_repl.json
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BENCH_BUILD_DIR:-$repo_root/build-release}"
out_dir="${BENCH_OUT_DIR:-$repo_root}"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$build_dir" -j >/dev/null

if [ "$#" -gt 0 ]; then
  benches=("$@")
else
  benches=()
  for exe in "$build_dir"/bench/bench_*; do
    [ -x "$exe" ] && benches+=("$(basename "$exe")")
  done
fi

for name in "${benches[@]}"; do
  exe="$build_dir/bench/$name"
  if [ ! -x "$exe" ]; then
    echo "error: no such benchmark: $name" >&2
    exit 1
  fi
  out="$out_dir/BENCH_${name#bench_}.json"
  echo "== $name -> $out"
  "$exe" --benchmark_out="$out" --benchmark_out_format=json
done
