/// \file gluenail.cc
/// \brief The gluenail command-line shell.
///
/// Usage:
///   gluenail                          interactive shell
///   gluenail program.gn ...           load programs, then shell
///   gluenail --edb data.facts         preload the EDB
///   gluenail -e 'stmt.'               execute and exit (repeatable)
///   gluenail -q 'goal'                query and exit (repeatable)
///   gluenail --script file            run shell commands from a file
///
/// Everything the shell accepts is described under :help.

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "src/api/engine.h"
#include "src/api/repl.h"

namespace {

int Fail(const gluenail::Status& s) {
  std::cerr << "gluenail: " << s << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  gluenail::Engine engine;
  bool ran_batch = false;
  std::vector<std::string> scripts;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "gluenail: " << arg << " needs an argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--edb") {
      gluenail::Status s = engine.LoadEdbFile(next());
      if (!s.ok()) return Fail(s);
    } else if (arg == "-e") {
      ran_batch = true;
      gluenail::Status s = engine.ExecuteStatement(next());
      if (!s.ok()) return Fail(s);
    } else if (arg == "-q") {
      ran_batch = true;
      auto r = engine.Query(next());
      if (!r.ok()) return Fail(r.status());
      for (const gluenail::Tuple& row : r->rows) {
        for (size_t c = 0; c < row.size(); ++c) {
          if (c != 0) std::cout << ", ";
          std::cout << r->vars[c] << " = "
                    << engine.terms().ToString(row[c]);
        }
        std::cout << "\n";
      }
    } else if (arg == "--script") {
      scripts.push_back(next());
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: gluenail [program.gn ...] [--edb FILE] "
                   "[-e STMT] [-q GOAL] [--script FILE]\n";
      return 0;
    } else {
      std::ifstream f(arg);
      if (!f.is_open()) {
        std::cerr << "gluenail: cannot open " << arg << "\n";
        return 1;
      }
      std::ostringstream text;
      text << f.rdbuf();
      gluenail::Status s = engine.LoadProgram(text.str());
      if (!s.ok()) return Fail(s);
      std::cout << "loaded " << arg << ": "
                << gluenail::FormatCompileStats(engine.compile_stats())
                << "\n";
    }
  }

  for (const std::string& path : scripts) {
    ran_batch = true;
    std::ifstream f(path);
    if (!f.is_open()) {
      std::cerr << "gluenail: cannot open " << path << "\n";
      return 1;
    }
    gluenail::ReplOptions opts;
    opts.prompt = false;
    gluenail::Repl repl(&engine, &f, &std::cout, opts);
    gluenail::Status s = repl.Run();
    if (!s.ok()) return Fail(s);
  }

  if (ran_batch) return 0;

  std::cout << "Glue-Nail shell — :help for commands, :quit to leave\n";
  gluenail::Repl repl(&engine, &std::cin, &std::cout);
  gluenail::Status s = repl.Run();
  return s.ok() ? 0 : Fail(s);
}
