/// \file gluenail.cc
/// \brief The gluenail command-line shell and server launcher.
///
/// Usage:
///   gluenail                          interactive shell
///   gluenail program.gn ...           load programs, then shell
///   gluenail --edb data.facts         preload the EDB
///   gluenail -e 'stmt.'               execute and exit (repeatable)
///   gluenail -q 'goal'                query and exit (repeatable)
///   gluenail --script file            run shell commands from a file
///   gluenail --serve PORT             serve the wire protocol on PORT
///   gluenail --admin-port PORT        also serve HTTP /metrics /slowlog
///
/// Everything the shell accepts is described under :help.
/// `--serve` runs until SIGINT/SIGTERM, then shuts down gracefully:
/// in-flight commands finish and their responses are written before the
/// process exits.

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include <unistd.h>

#include "src/api/engine.h"
#include "src/api/repl.h"
#include "src/server/server.h"

namespace {

int Fail(const gluenail::Status& s) {
  std::cerr << "gluenail: " << s << "\n";
  return 1;
}

/// Self-pipe written by the signal handler; ServeForever blocks on it.
int g_signal_pipe[2] = {-1, -1};

void OnSignal(int) {
  char byte = 1;
  // write(2) is async-signal-safe; a full pipe just means a signal is
  // already pending, which is all we need.
  ssize_t ignored = write(g_signal_pipe[1], &byte, 1);
  (void)ignored;
}

int ServeForever(gluenail::Engine* engine, int port, int admin_port) {
  if (pipe(g_signal_pipe) != 0) {
    std::cerr << "gluenail: pipe: " << std::strerror(errno) << "\n";
    return 1;
  }
  gluenail::ServerOptions opts;
  opts.port = static_cast<uint16_t>(port);
  opts.admin_port = admin_port;
  gluenail::Server server(engine, opts);
  gluenail::Status s = server.Start();
  if (!s.ok()) return Fail(s);

  std::cout << "gluenail: serving on port " << server.port();
  if (admin_port >= 0) {
    std::cout << " (admin http on " << server.admin_port() << ")";
  }
  std::cout << "\n";

  struct sigaction sa = {};
  sa.sa_handler = OnSignal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);

  // Block until a signal arrives (EINTR restarts the read).
  char byte;
  while (read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }

  std::cout << "gluenail: shutting down (draining "
            << server.connections_live() << " connection(s))\n";
  server.Stop();
  std::cout << "gluenail: served " << server.commands_served()
            << " command(s) over " << server.connections_accepted()
            << " connection(s)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  gluenail::Engine engine;
  bool ran_batch = false;
  int serve_port = -1;
  int admin_port = -1;
  std::vector<std::string> scripts;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "gluenail: " << arg << " needs an argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--edb") {
      gluenail::Status s = engine.LoadEdbFile(next());
      if (!s.ok()) return Fail(s);
    } else if (arg == "-e") {
      ran_batch = true;
      gluenail::Status s = engine.ExecuteStatement(next());
      if (!s.ok()) return Fail(s);
    } else if (arg == "-q") {
      ran_batch = true;
      auto r = engine.Query(next());
      if (!r.ok()) return Fail(r.status());
      for (const gluenail::Tuple& row : r->rows) {
        for (size_t c = 0; c < row.size(); ++c) {
          if (c != 0) std::cout << ", ";
          std::cout << r->vars[c] << " = "
                    << engine.terms().ToString(row[c]);
        }
        std::cout << "\n";
      }
    } else if (arg == "--script") {
      scripts.push_back(next());
    } else if (arg == "--serve") {
      serve_port = std::atoi(next());
      if (serve_port < 0 || serve_port > 65535) {
        std::cerr << "gluenail: --serve needs a port in [0, 65535]\n";
        return 2;
      }
    } else if (arg == "--admin-port") {
      admin_port = std::atoi(next());
      if (admin_port < 0 || admin_port > 65535) {
        std::cerr << "gluenail: --admin-port needs a port in [0, 65535]\n";
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: gluenail [program.gn ...] [--edb FILE] "
                   "[-e STMT] [-q GOAL] [--script FILE]\n"
                   "       gluenail --serve PORT [--admin-port PORT] "
                   "[program.gn ...] [--edb FILE]\n";
      return 0;
    } else {
      std::ifstream f(arg);
      if (!f.is_open()) {
        std::cerr << "gluenail: cannot open " << arg << "\n";
        return 1;
      }
      std::ostringstream text;
      text << f.rdbuf();
      gluenail::Status s = engine.LoadProgram(text.str());
      if (!s.ok()) return Fail(s);
      std::cout << "loaded " << arg << ": "
                << gluenail::FormatCompileStats(engine.compile_stats())
                << "\n";
    }
  }

  for (const std::string& path : scripts) {
    ran_batch = true;
    std::ifstream f(path);
    if (!f.is_open()) {
      std::cerr << "gluenail: cannot open " << path << "\n";
      return 1;
    }
    gluenail::ReplOptions opts;
    opts.prompt = false;
    gluenail::Repl repl(&engine, &f, &std::cout, opts);
    gluenail::Status s = repl.Run();
    if (!s.ok()) return Fail(s);
  }

  if (serve_port >= 0) return ServeForever(&engine, serve_port, admin_port);
  if (admin_port >= 0) {
    std::cerr << "gluenail: --admin-port requires --serve\n";
    return 2;
  }

  if (ran_batch) return 0;

  std::cout << "Glue-Nail shell — :help for commands, :quit to leave\n";
  gluenail::Repl repl(&engine, &std::cin, &std::cout);
  gluenail::Status s = repl.Run();
  return s.ok() ? 0 : Fail(s);
}
