/// \file gluenail.cc
/// \brief The gluenail command-line shell and server launcher.
///
/// Usage:
///   gluenail                          interactive shell
///   gluenail program.gn ...           load programs, then shell
///   gluenail --edb data.facts         preload the EDB
///   gluenail -e 'stmt.'               execute and exit (repeatable)
///   gluenail -q 'goal'                query and exit (repeatable)
///   gluenail --script file            run shell commands from a file
///   gluenail --serve PORT             serve the wire protocol on PORT
///   gluenail --admin-port PORT        also serve HTTP /metrics /slowlog
///   gluenail --max-connections N      admission-control the wire port
///   gluenail --data DIR               durable mode: recover from DIR's
///                                     checkpoint+WAL at boot, log every
///                                     mutation, checkpoint at shutdown
///   gluenail --durability LEVEL       none|async|sync|group (default:
///                                     group when --data is given)
///   gluenail --fsync-interval-us N    async-durability sync spacing in
///                                     microseconds
///   gluenail --group-linger-us N      extra group-commit linger before
///                                     the leader's fsync (default 0:
///                                     sync immediately, absorb late
///                                     committers into the next group)
///   gluenail --salvage                recover past mid-log WAL corruption
///   gluenail --replicate-from H:P     run as a read replica of the
///                                     primary at host H, port P: tail
///                                     its WAL, refuse mutations, serve
///                                     queries (requires --serve)
///
/// Everything the shell accepts is described under :help.
/// `--serve` runs until SIGINT/SIGTERM, then shuts down gracefully:
/// in-flight commands finish and their responses are written before the
/// process exits; with --data, a final checkpoint rotates the log.

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include <unistd.h>

#include "src/api/engine.h"
#include "src/api/repl.h"
#include "src/server/replication.h"
#include "src/server/server.h"

namespace {

int Fail(const gluenail::Status& s) {
  std::cerr << "gluenail: " << s << "\n";
  return 1;
}

/// Self-pipe written by the signal handler; ServeForever blocks on it.
int g_signal_pipe[2] = {-1, -1};

void OnSignal(int) {
  char byte = 1;
  // write(2) is async-signal-safe; a full pipe just means a signal is
  // already pending, which is all we need.
  ssize_t ignored = write(g_signal_pipe[1], &byte, 1);
  (void)ignored;
}

int ServeForever(gluenail::Engine* engine, int port, int admin_port,
                 int max_connections, const std::string& primary_host,
                 int primary_port) {
  if (pipe(g_signal_pipe) != 0) {
    std::cerr << "gluenail: pipe: " << std::strerror(errno) << "\n";
    return 1;
  }
  gluenail::ServerOptions opts;
  opts.port = static_cast<uint16_t>(port);
  opts.admin_port = admin_port;
  opts.max_connections = max_connections;
  gluenail::Server server(engine, opts);
  gluenail::Status s = server.Start();
  if (!s.ok()) return Fail(s);

  gluenail::ReplicationClientOptions repl_opts;
  repl_opts.host = primary_host;
  repl_opts.port = static_cast<uint16_t>(primary_port);
  gluenail::ReplicationClient replication(engine, repl_opts);
  if (!primary_host.empty()) {
    gluenail::Status rs = replication.Start();
    if (!rs.ok()) return Fail(rs);
  }

  std::cout << "gluenail: serving on port " << server.port();
  if (admin_port >= 0) {
    std::cout << " (admin http on " << server.admin_port() << ")";
  }
  if (!primary_host.empty()) {
    std::cout << " as a replica of " << primary_host << ":" << primary_port;
  }
  std::cout << "\n";

  struct sigaction sa = {};
  sa.sa_handler = OnSignal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);

  // Block until a signal arrives (EINTR restarts the read).
  char byte;
  while (read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }

  std::cout << "gluenail: shutting down (draining "
            << server.connections_live() << " connection(s))\n";
  replication.Stop();  // stop applying before the query surface drains
  server.Stop();
  std::cout << "gluenail: served " << server.commands_served()
            << " command(s) over " << server.connections_accepted()
            << " connection(s)\n";
  if (engine->wal() != nullptr) {
    // Final checkpoint: the next boot replays no log at all.
    gluenail::Status cp = engine->Checkpoint();
    if (!cp.ok()) return Fail(cp);
    std::cout << "gluenail: checkpointed\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Durability flags decide how the engine is *constructed*, so they are
  // pulled out in a pre-pass; the main pass then skips them.
  gluenail::EngineOptions eng_opts;
  bool durability_set = false;
  int max_connections = 0;
  std::string primary_host;
  int primary_port = -1;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "gluenail: " << arg << " needs an argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--data") {
      eng_opts.data_dir = next();
    } else if (arg == "--durability") {
      std::string level = next();
      durability_set = true;
      if (level == "none") {
        eng_opts.durability = gluenail::DurabilityLevel::kNone;
      } else if (level == "async") {
        eng_opts.durability = gluenail::DurabilityLevel::kAsync;
      } else if (level == "sync") {
        eng_opts.durability = gluenail::DurabilityLevel::kSync;
      } else if (level == "group") {
        eng_opts.durability = gluenail::DurabilityLevel::kGroupCommit;
      } else {
        std::cerr << "gluenail: --durability needs none|async|sync|group\n";
        return 2;
      }
    } else if (arg == "--fsync-interval-us") {
      eng_opts.wal_fsync_interval =
          std::chrono::microseconds(std::atoll(next()));
    } else if (arg == "--group-linger-us") {
      eng_opts.wal_group_linger =
          std::chrono::microseconds(std::atoll(next()));
    } else if (arg == "--salvage") {
      eng_opts.wal_recovery = gluenail::RecoveryMode::kSalvage;
    } else if (arg == "--max-connections") {
      max_connections = std::atoi(next());
    } else if (arg == "--replicate-from") {
      std::string target = next();
      size_t colon = target.rfind(':');
      if (colon == std::string::npos || colon == 0) {
        std::cerr << "gluenail: --replicate-from needs HOST:PORT\n";
        return 2;
      }
      primary_host = target.substr(0, colon);
      primary_port = std::atoi(target.c_str() + colon + 1);
      if (primary_port <= 0 || primary_port > 65535) {
        std::cerr << "gluenail: --replicate-from needs a port in "
                     "[1, 65535]\n";
        return 2;
      }
      eng_opts.replica = true;
      eng_opts.primary_hint = target;
    } else if (arg == "--edb" || arg == "-e" || arg == "-q" ||
               arg == "--script" || arg == "--serve" ||
               arg == "--admin-port") {
      next();  // skip the flag's argument in this pass
    }
  }
  if (!eng_opts.data_dir.empty() && !durability_set) {
    eng_opts.durability = gluenail::DurabilityLevel::kGroupCommit;
  }
  if (eng_opts.data_dir.empty() &&
      eng_opts.durability != gluenail::DurabilityLevel::kNone) {
    std::cerr << "gluenail: --durability needs --data DIR\n";
    return 2;
  }
  if (eng_opts.replica && !eng_opts.data_dir.empty()) {
    // A replica's state comes from the primary's stream, not its own
    // log; mixing in local recovery would fork the two histories.
    std::cerr << "gluenail: --replicate-from cannot be combined with "
                 "--data\n";
    return 2;
  }

  gluenail::Engine engine(eng_opts);
  if (!eng_opts.data_dir.empty()) {
    auto recovered = engine.Recover();
    if (!recovered.ok()) return Fail(recovered.status());
    std::cout << "gluenail: " << recovered->Summary() << "\n";
  }

  bool ran_batch = false;
  int serve_port = -1;
  int admin_port = -1;
  std::vector<std::string> scripts;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "gluenail: " << arg << " needs an argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--edb") {
      gluenail::Status s = engine.LoadEdbFile(next());
      if (!s.ok()) return Fail(s);
    } else if (arg == "-e") {
      ran_batch = true;
      gluenail::Status s = engine.ExecuteStatement(next());
      if (!s.ok()) return Fail(s);
    } else if (arg == "-q") {
      ran_batch = true;
      auto r = engine.Query(next());
      if (!r.ok()) return Fail(r.status());
      for (const gluenail::Tuple& row : r->rows) {
        for (size_t c = 0; c < row.size(); ++c) {
          if (c != 0) std::cout << ", ";
          std::cout << r->vars[c] << " = "
                    << engine.terms().ToString(row[c]);
        }
        std::cout << "\n";
      }
    } else if (arg == "--script") {
      scripts.push_back(next());
    } else if (arg == "--serve") {
      serve_port = std::atoi(next());
      if (serve_port < 0 || serve_port > 65535) {
        std::cerr << "gluenail: --serve needs a port in [0, 65535]\n";
        return 2;
      }
    } else if (arg == "--admin-port") {
      admin_port = std::atoi(next());
      if (admin_port < 0 || admin_port > 65535) {
        std::cerr << "gluenail: --admin-port needs a port in [0, 65535]\n";
        return 2;
      }
    } else if (arg == "--data" || arg == "--durability" ||
               arg == "--fsync-interval-us" || arg == "--group-linger-us" ||
               arg == "--max-connections" || arg == "--replicate-from") {
      next();  // consumed by the pre-pass
    } else if (arg == "--salvage") {
      // consumed by the pre-pass
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: gluenail [program.gn ...] [--edb FILE] "
                   "[-e STMT] [-q GOAL] [--script FILE]\n"
                   "       gluenail --serve PORT [--admin-port PORT] "
                   "[--max-connections N] [program.gn ...] [--edb FILE]\n"
                   "       gluenail --data DIR [--durability "
                   "none|async|sync|group] [--fsync-interval-us N] "
                   "[--group-linger-us N] [--salvage] ...\n"
                   "       gluenail --serve PORT --replicate-from "
                   "HOST:PORT [program.gn ...]\n";
      return 0;
    } else {
      std::ifstream f(arg);
      if (!f.is_open()) {
        std::cerr << "gluenail: cannot open " << arg << "\n";
        return 1;
      }
      std::ostringstream text;
      text << f.rdbuf();
      gluenail::Status s = engine.LoadProgram(text.str());
      if (!s.ok()) return Fail(s);
      std::cout << "loaded " << arg << ": "
                << gluenail::FormatCompileStats(engine.compile_stats())
                << "\n";
    }
  }

  for (const std::string& path : scripts) {
    ran_batch = true;
    std::ifstream f(path);
    if (!f.is_open()) {
      std::cerr << "gluenail: cannot open " << path << "\n";
      return 1;
    }
    gluenail::ReplOptions opts;
    opts.prompt = false;
    gluenail::Repl repl(&engine, &f, &std::cout, opts);
    gluenail::Status s = repl.Run();
    if (!s.ok()) return Fail(s);
  }

  if (serve_port >= 0) {
    return ServeForever(&engine, serve_port, admin_port, max_connections,
                        primary_host, primary_port);
  }
  if (admin_port >= 0) {
    std::cerr << "gluenail: --admin-port requires --serve\n";
    return 2;
  }
  if (eng_opts.replica) {
    std::cerr << "gluenail: --replicate-from requires --serve\n";
    return 2;
  }

  if (ran_batch) return 0;

  std::cout << "Glue-Nail shell — :help for commands, :quit to leave\n";
  gluenail::Repl repl(&engine, &std::cin, &std::cout);
  gluenail::Status s = repl.Run();
  return s.ok() ? 0 : Fail(s);
}
