#!/usr/bin/env bash
# Builds and runs the test suite across the build configurations the CI
# matrix cares about:
#
#   debug  — plain Debug build, full ctest suite
#   asan   — -DGLUENAIL_ASAN=ON, runs the asan-labelled storage tests
#   ubsan  — -DGLUENAIL_UBSAN=ON, runs the ubsan-labelled planner tests
#   tsan   — -DGLUENAIL_TSAN=ON, runs the tsan-labelled concurrency tests
#   fault  — Debug build, runs only the faultinject-labelled matrix
#   obs    — Debug build, runs only the obs-labelled observability suite
#   server — Debug build, runs only the server-labelled service-layer
#            suite (framing, codecs, end-to-end socket tests); the same
#            tests also run under tsan via their tsan label
#   vector — Debug build, runs only the vector-labelled batch-vs-tuple
#            differential suite; the same tests also run under asan and
#            tsan via their labels
#   wal    — Debug build, runs only the wal-labelled durability suite
#            (crash-point sweeps, torn-tail/mid-log recovery, group
#            commit); the same tests also run under asan and tsan via
#            their labels
#   ivm    — Debug build, runs only the ivm-labelled incremental view
#            maintenance suite (counting/DRed differential checks,
#            fallback guards, recovery invalidation); the same tests
#            also run under asan and tsan via their labels
#   repl   — Debug build, runs only the repl-labelled log-shipping
#            replication suite (codecs, convergence, snapshot
#            bootstrap, torn streams, fault sweeps); the same tests
#            also run under asan and tsan via their labels
#
# Usage: tools/run_tests.sh [config ...]
#   tools/run_tests.sh                # debug + asan + ubsan + tsan
#   tools/run_tests.sh debug          # just the plain suite
#   tools/run_tests.sh fault          # just the fault-injection matrix
#   tools/run_tests.sh obs            # just the observability suite
#
# Build trees are kept per-config under build-<config>/ (override the
# prefix with $TEST_BUILD_PREFIX) so switching configs never thrashes one
# cache.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
prefix="${TEST_BUILD_PREFIX:-$repo_root/build}"

configure_and_build() {
  local dir="$1"; shift
  cmake -B "$dir" -S "$repo_root" "$@" >/dev/null
  cmake --build "$dir" -j
}

run_config() {
  local config="$1"
  case "$config" in
    debug)
      configure_and_build "$prefix-debug" -DCMAKE_BUILD_TYPE=Debug
      (cd "$prefix-debug" && ctest --output-on-failure -j)
      ;;
    asan)
      configure_and_build "$prefix-asan" -DCMAKE_BUILD_TYPE=Debug \
        -DGLUENAIL_ASAN=ON
      (cd "$prefix-asan" && ctest --output-on-failure -L asan -j)
      ;;
    ubsan)
      configure_and_build "$prefix-ubsan" -DCMAKE_BUILD_TYPE=Debug \
        -DGLUENAIL_UBSAN=ON
      (cd "$prefix-ubsan" && ctest --output-on-failure -L ubsan -j)
      ;;
    tsan)
      configure_and_build "$prefix-tsan" -DCMAKE_BUILD_TYPE=Debug \
        -DGLUENAIL_TSAN=ON
      (cd "$prefix-tsan" && ctest --output-on-failure -L tsan -j)
      ;;
    fault)
      configure_and_build "$prefix-debug" -DCMAKE_BUILD_TYPE=Debug
      (cd "$prefix-debug" && ctest --output-on-failure -L faultinject -j)
      ;;
    obs)
      configure_and_build "$prefix-debug" -DCMAKE_BUILD_TYPE=Debug
      (cd "$prefix-debug" && ctest --output-on-failure -L obs -j)
      ;;
    server)
      configure_and_build "$prefix-debug" -DCMAKE_BUILD_TYPE=Debug
      (cd "$prefix-debug" && ctest --output-on-failure -L server -j)
      ;;
    vector)
      configure_and_build "$prefix-debug" -DCMAKE_BUILD_TYPE=Debug
      (cd "$prefix-debug" && ctest --output-on-failure -L vector -j)
      ;;
    wal)
      configure_and_build "$prefix-debug" -DCMAKE_BUILD_TYPE=Debug
      (cd "$prefix-debug" && ctest --output-on-failure -L wal -j)
      ;;
    ivm)
      configure_and_build "$prefix-debug" -DCMAKE_BUILD_TYPE=Debug
      (cd "$prefix-debug" && ctest --output-on-failure -L ivm -j)
      ;;
    repl)
      configure_and_build "$prefix-debug" -DCMAKE_BUILD_TYPE=Debug
      (cd "$prefix-debug" && ctest --output-on-failure -L repl -j)
      ;;
    *)
      echo "error: unknown config '$config' (debug|asan|ubsan|tsan|fault|obs|server|vector|wal|ivm|repl)" >&2
      exit 1
      ;;
  esac
}

configs=("$@")
if [ "${#configs[@]}" -eq 0 ]; then
  configs=(debug asan ubsan tsan)
fi

for config in "${configs[@]}"; do
  echo "== $config"
  run_config "$config"
done
echo "== all configs passed"
